package wl

import (
	"fmt"
	"math/rand"
	"testing"

	"jobgraph/internal/dag"
	"jobgraph/internal/linalg"
)

// TestSymMatrixMatchesDense pins the packed kernel path to the dense
// one bit for bit: the pipeline caches the packed form and expands it
// downstream, so any divergence here would silently change Analysis
// output.
func TestSymMatrixMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	graphs := make([]*dag.Graph, 30)
	for i := range graphs {
		graphs[i] = randomDAG(rng, fmt.Sprintf("g%d", i), 2+rng.Intn(10))
	}
	vecs, _, err := Features(graphs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	compact := CompactAll(vecs)
	for _, workers := range []int{1, 4} {
		dense, err := MatrixFromVectorsOpts(vecs, MatrixOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		check := func(name string, packed *linalg.SymMatrix) {
			t.Helper()
			got := packed.Dense()
			if got.Rows != dense.Rows || got.Cols != dense.Cols {
				t.Fatalf("workers=%d %s shape %dx%d, want %dx%d",
					workers, name, got.Rows, got.Cols, dense.Rows, dense.Cols)
			}
			for k := range dense.Data {
				if got.Data[k] != dense.Data[k] {
					t.Fatalf("workers=%d %s kernel differs from dense at flat index %d: %v != %v",
						workers, name, k, got.Data[k], dense.Data[k])
				}
			}
		}
		packed, err := SymMatrixFromVectorsOpts(vecs, MatrixOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		check("map", packed)
		merged, err := SymMatrixFromCompactOpts(compact, MatrixOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		check("compact", merged)
	}
}

// TestCompactVectorDotMatchesMap pins the merge-join dot to the map
// dot, including self-kernels and vectors with no overlap.
func TestCompactVectorDotMatchesMap(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 50; trial++ {
		a, b := Vector{}, Vector{}
		for k := 0; k < 40; k++ {
			if rng.Intn(3) == 0 {
				a[rng.Intn(60)] += float64(1 + rng.Intn(5))
			}
			if rng.Intn(3) == 0 {
				b[rng.Intn(60)] += float64(1 + rng.Intn(5))
			}
		}
		ca, cb := CompactFromVector(a), CompactFromVector(b)
		if got, want := ca.Dot(cb), Dot(a, b); got != want {
			t.Fatalf("trial %d: compact dot %v != map dot %v", trial, got, want)
		}
		if got, want := ca.SelfDot(), Dot(a, a); got != want {
			t.Fatalf("trial %d: compact self %v != map self %v", trial, got, want)
		}
	}
}
