// Sketch-space clustering: grouping jobs by their hashed WL feature
// vectors without ever forming the dense kernel matrix. Two algorithms
// cover the scale regimes the exact spectral path cannot reach:
//
//   - MiniBatchKMeans — spherical (cosine) k-means over sparse vectors
//     with mini-batch centroid updates (Sculley 2010). Cost per batch is
//     O(batch × K × nnz); corpus size only enters through the final full
//     assignment pass, so millions of jobs cluster in seconds.
//   - SketchKMedoids — PAM-style k-medoids where swap proposals come
//     from an ANN candidate graph instead of the full O(n²) pairwise
//     scan, so re-centering only ever inspects jobs the LSH tables
//     already consider similar. Centers are actual jobs (exemplars).
//
// Both operate on []map[int]float64 — plain sparse vectors — so the
// package stays decoupled from internal/wl; callers convert wl.Vector
// element-wise. The exact spectral path (spectral.go) remains the
// reference on ≤100-job samples; the agreement between the two is part
// of the accuracy-vs-speed gate.
package cluster

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"jobgraph/internal/obs"
)

var (
	obsMiniBatchRuns  = obs.Default().Counter("cluster.minibatch.runs")
	obsMiniBatchIters = obs.Default().Histogram("cluster.minibatch.iterations")
	obsSketchPAMRuns  = obs.Default().Counter("cluster.sketchpam.runs")
)

// MiniBatchKMeansOptions configures spherical mini-batch k-means.
type MiniBatchKMeansOptions struct {
	K         int
	BatchSize int     // points per update batch; default 256
	MaxIter   int     // update batches; default 100
	Tol       float64 // stop when no center moved more than Tol (cosine distance); default 1e-6
	Seed      int64
}

func (o *MiniBatchKMeansOptions) defaults() {
	if o.BatchSize <= 0 {
		o.BatchSize = 256
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 100
	}
	if o.Tol <= 0 {
		o.Tol = 1e-6
	}
}

// MiniBatchKMeansResult is the clustering of one mini-batch descent.
type MiniBatchKMeansResult struct {
	Labels     []int             // cluster per point, in [0, K)
	Centers    []map[int]float64 // unit-norm sparse centroids
	Inertia    float64           // sum of cosine distances to assigned centroid
	Iterations int               // update batches consumed
}

// MiniBatchKMeans clusters sparse non-negative vectors into K groups by
// cosine distance. Deterministic for a fixed seed.
func MiniBatchKMeans(points []map[int]float64, opt MiniBatchKMeansOptions) (*MiniBatchKMeansResult, error) {
	opt.defaults()
	n := len(points)
	if n == 0 {
		return nil, fmt.Errorf("cluster: minibatch kmeans over zero points")
	}
	if opt.K < 1 || opt.K > n {
		return nil, fmt.Errorf("cluster: k=%d out of range [1,%d]", opt.K, n)
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	norms := make([]float64, n)
	for i, p := range points {
		norms[i] = sparseNorm(p)
	}

	centers := seedSparsePlusPlus(points, norms, opt.K, rng)
	counts := make([]int, opt.K)

	iters := 0
	for ; iters < opt.MaxIter; iters++ {
		maxMove := 0.0
		for b := 0; b < opt.BatchSize; b++ {
			i := rng.Intn(n)
			c := nearestSparse(centers, points[i], norms[i])
			counts[c]++
			// Sculley update with per-center learning rate 1/count,
			// then re-projection onto the unit sphere (spherical
			// mini-batch k-means).
			lr := 1.0 / float64(counts[c])
			moved := blendSparse(centers[c], points[i], norms[i], lr)
			if moved > maxMove {
				maxMove = moved
			}
		}
		if maxMove < opt.Tol {
			iters++
			break
		}
	}

	labels, inertia := assignSparse(centers, points, norms)
	// Revive empty clusters on the member whose assignment is worst —
	// the farthest-point reseed the dense path also uses.
	for attempt := 0; attempt < 3 && distinctLabels(labels) < opt.K; attempt++ {
		empty := emptyCluster(labels, opt.K)
		far := farthestSparse(centers, points, norms, labels)
		centers[empty] = unitSparse(points[far], norms[far])
		labels, inertia = assignSparse(centers, points, norms)
	}

	obsMiniBatchRuns.Add(1)
	obsMiniBatchIters.Observe(float64(iters))
	return &MiniBatchKMeansResult{
		Labels:     labels,
		Centers:    centers,
		Inertia:    inertia,
		Iterations: iters,
	}, nil
}

// SketchKMedoidsOptions configures candidate-graph k-medoids.
type SketchKMedoidsOptions struct {
	K            int
	MaxIter      int // swap rounds; default 30
	MaxProposals int // medoid proposals per cluster per round; default 8
	Seed         int64
}

func (o *SketchKMedoidsOptions) defaults() {
	if o.MaxIter <= 0 {
		o.MaxIter = 30
	}
	if o.MaxProposals <= 0 {
		o.MaxProposals = 8
	}
}

// SketchKMedoidsResult is the clustering plus its exemplar jobs.
type SketchKMedoidsResult struct {
	Labels  []int
	Medoids []int // point index serving as each cluster's exemplar
	Cost    float64
}

// SketchKMedoids clusters sparse vectors by cosine distance with PAM's
// Voronoi iteration, drawing re-centering proposals from neighbors —
// per-point candidate lists (an ANN index's CandidateNeighbors output)
// — instead of scanning all n members. neighbors may be nil, in which
// case proposals are sampled from cluster members only; it must
// otherwise have one list per point with in-range indexes.
func SketchKMedoids(points []map[int]float64, neighbors [][]int32, opt SketchKMedoidsOptions) (*SketchKMedoidsResult, error) {
	opt.defaults()
	n := len(points)
	if n == 0 {
		return nil, fmt.Errorf("cluster: sketch kmedoids over zero points")
	}
	if opt.K < 1 || opt.K > n {
		return nil, fmt.Errorf("cluster: k=%d out of range [1,%d]", opt.K, n)
	}
	if neighbors != nil && len(neighbors) != n {
		return nil, fmt.Errorf("cluster: %d neighbour lists for %d points", len(neighbors), n)
	}
	for i := range neighbors {
		for _, j := range neighbors[i] {
			if int(j) < 0 || int(j) >= n {
				return nil, fmt.Errorf("cluster: neighbour %d of point %d out of range", j, i)
			}
		}
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	norms := make([]float64, n)
	for i, p := range points {
		norms[i] = sparseNorm(p)
	}
	dist := func(a, b int) float64 {
		return cosDist(points[a], norms[a], points[b], norms[b])
	}

	// Farthest-first seeding from a random start (same scheme as the
	// dense PAM path, distances on demand).
	medoids := make([]int, 0, opt.K)
	medoids = append(medoids, rng.Intn(n))
	minDist := make([]float64, n)
	for i := range minDist {
		minDist[i] = dist(i, medoids[0])
	}
	for len(medoids) < opt.K {
		far, farD := 0, -1.0
		for i, d := range minDist {
			if d > farD {
				far, farD = i, d
			}
		}
		medoids = append(medoids, far)
		for i := range minDist {
			if d := dist(i, far); d < minDist[i] {
				minDist[i] = d
			}
		}
	}

	labels := make([]int, n)
	assign := func() float64 {
		var cost float64
		for i := 0; i < n; i++ {
			bestC, bestD := 0, math.MaxFloat64
			for c, m := range medoids {
				if d := dist(i, m); d < bestD {
					bestC, bestD = c, d
				}
			}
			labels[i] = bestC
			cost += bestD
		}
		return cost
	}
	cost := assign()

	members := make([][]int, opt.K)
	for it := 0; it < opt.MaxIter; it++ {
		for c := range members {
			members[c] = members[c][:0]
		}
		for i, l := range labels {
			members[l] = append(members[l], i)
		}
		changed := false
		for c := range medoids {
			props := proposeMedoids(medoids[c], members[c], neighbors, labels, c, opt.MaxProposals, rng)
			bestM, bestCost := medoids[c], clusterCost(medoids[c], members[c], dist)
			for _, p := range props {
				if s := clusterCost(p, members[c], dist); s < bestCost {
					bestM, bestCost = p, s
				}
			}
			if bestM != medoids[c] {
				medoids[c] = bestM
				changed = true
			}
		}
		if !changed {
			break
		}
		cost = assign()
	}
	obsSketchPAMRuns.Add(1)
	return &SketchKMedoidsResult{
		Labels:  append([]int(nil), labels...),
		Medoids: append([]int(nil), medoids...),
		Cost:    cost,
	}, nil
}

// proposeMedoids gathers up to max re-centering candidates for cluster
// c: the current medoid's candidate-graph neighbours that live in the
// cluster first (the informed proposals), then random members to fill.
func proposeMedoids(medoid int, members []int, neighbors [][]int32, labels []int, c, max int, rng *rand.Rand) []int {
	props := make([]int, 0, max)
	seen := map[int]struct{}{medoid: {}}
	if neighbors != nil {
		for _, j := range neighbors[medoid] {
			if len(props) >= max {
				break
			}
			if labels[j] != c {
				continue
			}
			if _, dup := seen[int(j)]; dup {
				continue
			}
			seen[int(j)] = struct{}{}
			props = append(props, int(j))
		}
	}
	for tries := 0; len(props) < max && tries < 4*max && len(members) > 1; tries++ {
		j := members[rng.Intn(len(members))]
		if _, dup := seen[j]; dup {
			continue
		}
		seen[j] = struct{}{}
		props = append(props, j)
	}
	sort.Ints(props)
	return props
}

// clusterCost is the total distance from candidate medoid m to the
// cluster's members.
func clusterCost(m int, members []int, dist func(a, b int) float64) float64 {
	var s float64
	for _, i := range members {
		s += dist(m, i)
	}
	return s
}

// --- sparse vector helpers ---

func sparseNorm(v map[int]float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

func sparseDot(a, b map[int]float64) float64 {
	if len(b) < len(a) {
		a, b = b, a
	}
	var s float64
	for k, x := range a {
		s += x * b[k]
	}
	return s
}

// cosDist is 1 - cosine similarity, with the empty-vector conventions
// of wl.Similarity (two empties coincide, empty vs non-empty is as far
// as possible).
func cosDist(a map[int]float64, na float64, b map[int]float64, nb float64) float64 {
	switch {
	case na == 0 && nb == 0:
		return 0
	case na == 0 || nb == 0:
		return 1
	}
	cos := sparseDot(a, b) / (na * nb)
	if cos > 1 {
		cos = 1
	}
	if cos < 0 {
		cos = 0
	}
	return 1 - cos
}

// unitSparse copies v scaled to unit norm (zero vectors copy as-is).
func unitSparse(v map[int]float64, norm float64) map[int]float64 {
	out := make(map[int]float64, len(v))
	for k, x := range v {
		if norm > 0 {
			out[k] = x / norm
		} else {
			out[k] = x
		}
	}
	return out
}

// centerNorm is the norm of a centroid map.
func centerNorm(c map[int]float64) float64 { return sparseNorm(c) }

// nearestSparse returns the centroid with the highest cosine similarity
// to p (centers are unit-norm, so the dot product suffices).
func nearestSparse(centers []map[int]float64, p map[int]float64, norm float64) int {
	best, bestDot := 0, math.Inf(-1)
	for c, ctr := range centers {
		if d := sparseDot(ctr, p); d > bestDot {
			best, bestDot = c, d
		}
	}
	_ = norm
	return best
}

// blendSparse moves center c toward the unit-normalized point by
// learning rate lr and re-projects it onto the unit sphere, returning
// the cosine distance the center moved. Entries that decay below 1e-9
// are pruned so long runs don't accrete the union of all supports.
func blendSparse(c map[int]float64, p map[int]float64, pNorm, lr float64) float64 {
	before := make(map[int]float64, len(c))
	for k, x := range c {
		before[k] = x
	}
	for k := range c {
		c[k] *= 1 - lr
	}
	if pNorm > 0 {
		for k, x := range p {
			c[k] += lr * x / pNorm
		}
	}
	n := centerNorm(c)
	for k, x := range c {
		y := x
		if n > 0 {
			y = x / n
		}
		if math.Abs(y) < 1e-9 {
			delete(c, k)
			continue
		}
		c[k] = y
	}
	return cosDist(before, sparseNorm(before), c, centerNorm(c))
}

// assignSparse labels every point with its nearest centroid and totals
// the cosine-distance inertia.
func assignSparse(centers []map[int]float64, points []map[int]float64, norms []float64) ([]int, float64) {
	labels := make([]int, len(points))
	var inertia float64
	for i, p := range points {
		c := nearestSparse(centers, p, norms[i])
		labels[i] = c
		inertia += cosDist(p, norms[i], centers[c], centerNorm(centers[c]))
	}
	return labels, inertia
}

// seedSparsePlusPlus picks K initial unit-norm centroids with D²
// weighting under cosine distance.
func seedSparsePlusPlus(points []map[int]float64, norms []float64, k int, rng *rand.Rand) []map[int]float64 {
	n := len(points)
	first := rng.Intn(n)
	centers := []map[int]float64{unitSparse(points[first], norms[first])}
	dist := make([]float64, n)
	for i, p := range points {
		dist[i] = cosDist(p, norms[i], centers[0], 1)
	}
	for len(centers) < k {
		var total float64
		for _, v := range dist {
			total += v
		}
		var idx int
		if total == 0 {
			idx = rng.Intn(n)
		} else {
			target := rng.Float64() * total
			acc := 0.0
			for i, v := range dist {
				acc += v
				if acc >= target {
					idx = i
					break
				}
			}
		}
		c := unitSparse(points[idx], norms[idx])
		centers = append(centers, c)
		for i, p := range points {
			if d := cosDist(p, norms[i], c, 1); d < dist[i] {
				dist[i] = d
			}
		}
	}
	return centers
}

// emptyCluster returns the first cluster id in [0,k) with no members.
func emptyCluster(labels []int, k int) int {
	pop := make([]int, k)
	for _, l := range labels {
		pop[l]++
	}
	for c, p := range pop {
		if p == 0 {
			return c
		}
	}
	return 0
}

// farthestSparse returns the point farthest (cosine) from its assigned
// centroid.
func farthestSparse(centers []map[int]float64, points []map[int]float64, norms []float64, labels []int) int {
	bestI, bestD := 0, -1.0
	for i, p := range points {
		c := centers[labels[i]]
		if d := cosDist(p, norms[i], c, centerNorm(c)); d > bestD {
			bestI, bestD = i, d
		}
	}
	return bestI
}
