// Package cluster implements the unsupervised learning stage of the
// paper (§VI): k-means++ in Euclidean space and Ng–Jordan–Weiss spectral
// clustering over the WL similarity matrix, plus the agreement and
// quality metrics used to compare clusterings (silhouette, adjusted Rand
// index, normalized mutual information, purity).
package cluster

import (
	"fmt"
	"math"
	"math/rand"

	"jobgraph/internal/obs"
)

// Convergence telemetry: Lloyd iterations of the winning restart and
// its final inertia, one observation per KMeans call.
var (
	obsKMeansRuns       = obs.Default().Counter("cluster.kmeans.runs")
	obsKMeansIterations = obs.Default().Histogram("cluster.kmeans.iterations")
	obsKMeansInertia    = obs.Default().Histogram("cluster.kmeans.inertia")
	obsKMeansReseeds    = obs.Default().Counter("cluster.kmeans.reseeds")
	obsKMeansDegenerate = obs.Default().Counter("cluster.kmeans.degenerate")
)

// kmeansMaxReseeds bounds the extra restart batches tried when the best
// clustering is degenerate (fewer than K populated clusters, which
// happens when many points coincide). Each batch reruns all restarts
// from a derived seed, so the happy path is bit-for-bit unchanged.
const kmeansMaxReseeds = 3

// KMeansOptions configures Lloyd's algorithm with k-means++ seeding.
type KMeansOptions struct {
	K        int
	MaxIter  int   // default 100
	Restarts int   // independent seedings, best inertia wins; default 8
	Seed     int64 // RNG seed for reproducible experiments
}

func (o *KMeansOptions) defaults() {
	if o.MaxIter <= 0 {
		o.MaxIter = 100
	}
	if o.Restarts <= 0 {
		o.Restarts = 8
	}
}

// KMeansResult is the best clustering found across restarts.
type KMeansResult struct {
	Labels     []int       // cluster id per input point, in [0, K)
	Centers    [][]float64 // K centroids
	Inertia    float64     // sum of squared distances to assigned centroid
	Iterations int         // Lloyd iterations of the winning restart

	// Degenerate reports that fewer than K clusters are populated even
	// after kmeansMaxReseeds reseeded retries — the data genuinely does
	// not support K distinct groups (e.g. massive duplication). The
	// labels are still valid; downstream profiling simply sees empty
	// groups collapsed away.
	Degenerate bool
}

// KMeans clusters points (each a d-dimensional vector) into K groups.
func KMeans(points [][]float64, opt KMeansOptions) (*KMeansResult, error) {
	opt.defaults()
	n := len(points)
	if n == 0 {
		return nil, fmt.Errorf("cluster: kmeans over zero points")
	}
	d := len(points[0])
	for i, p := range points {
		if len(p) != d {
			return nil, fmt.Errorf("cluster: point %d has dim %d, want %d", i, len(p), d)
		}
	}
	if opt.K < 1 || opt.K > n {
		return nil, fmt.Errorf("cluster: k=%d out of range [1,%d]", opt.K, n)
	}

	best := bestOfRestarts(points, opt, opt.Seed)
	if distinctLabels(best.Labels) < opt.K {
		// Degenerate seeding: retry whole restart batches from derived
		// seeds before giving up, preferring any non-degenerate result
		// over a lower-inertia degenerate one.
		for attempt := 1; attempt <= kmeansMaxReseeds; attempt++ {
			obsKMeansReseeds.Add(1)
			cand := bestOfRestarts(points, opt, opt.Seed+int64(attempt)*0x9E3779B9)
			if distinctLabels(cand.Labels) >= opt.K {
				best = cand
				break
			}
			if cand.Inertia < best.Inertia {
				best = cand
			}
		}
		if distinctLabels(best.Labels) < opt.K {
			best.Degenerate = true
			obsKMeansDegenerate.Add(1)
		}
	}
	obsKMeansRuns.Add(1)
	obsKMeansIterations.Observe(float64(best.Iterations))
	obsKMeansInertia.Observe(best.Inertia)
	return best, nil
}

// bestOfRestarts runs opt.Restarts independent Lloyd descents from one
// RNG seed and keeps the lowest-inertia result.
func bestOfRestarts(points [][]float64, opt KMeansOptions, seed int64) *KMeansResult {
	rng := rand.New(rand.NewSource(seed))
	var best *KMeansResult
	for r := 0; r < opt.Restarts; r++ {
		res := lloyd(points, opt.K, opt.MaxIter, rng)
		if best == nil || res.Inertia < best.Inertia {
			best = res
		}
	}
	return best
}

// distinctLabels counts the populated clusters of a labeling.
func distinctLabels(labels []int) int {
	seen := make(map[int]struct{}, 8)
	for _, l := range labels {
		seen[l] = struct{}{}
	}
	return len(seen)
}

// lloyd runs one k-means++ seeded Lloyd descent.
func lloyd(points [][]float64, k, maxIter int, rng *rand.Rand) *KMeansResult {
	n, d := len(points), len(points[0])
	centers := seedPlusPlus(points, k, rng)
	labels := make([]int, n)
	counts := make([]int, k)

	iters := 0
	for ; iters < maxIter; iters++ {
		changed := false
		for i, p := range points {
			c := nearest(centers, p)
			if c != labels[i] {
				labels[i] = c
				changed = true
			}
		}
		// Recompute centroids.
		for c := range centers {
			for j := range centers[c] {
				centers[c][j] = 0
			}
			counts[c] = 0
		}
		for i, p := range points {
			c := labels[i]
			counts[c]++
			for j, v := range p {
				centers[c][j] += v
			}
		}
		for c := range centers {
			if counts[c] == 0 {
				// Empty cluster: restart its centroid at the point
				// farthest from its current assignment, the standard
				// fix that keeps K clusters alive.
				centers[c] = append([]float64(nil), farthestPoint(points, centers, labels)...)
				changed = true
				continue
			}
			for j := range centers[c] {
				centers[c][j] /= float64(counts[c])
			}
		}
		if !changed {
			break
		}
	}

	var inertia float64
	for i, p := range points {
		inertia += sqDist(p, centers[labels[i]])
	}
	_ = d
	return &KMeansResult{
		Labels:     append([]int(nil), labels...),
		Centers:    centers,
		Inertia:    inertia,
		Iterations: iters,
	}
}

// seedPlusPlus picks k initial centroids with D² weighting
// (Arthur & Vassilvitskii 2007).
func seedPlusPlus(points [][]float64, k int, rng *rand.Rand) [][]float64 {
	n := len(points)
	centers := make([][]float64, 0, k)
	first := points[rng.Intn(n)]
	centers = append(centers, append([]float64(nil), first...))

	dist := make([]float64, n)
	for i, p := range points {
		dist[i] = sqDist(p, centers[0])
	}
	for len(centers) < k {
		var total float64
		for _, v := range dist {
			total += v
		}
		var idx int
		if total == 0 {
			// All remaining points coincide with a centroid; pick any.
			idx = rng.Intn(n)
		} else {
			target := rng.Float64() * total
			acc := 0.0
			for i, v := range dist {
				acc += v
				if acc >= target {
					idx = i
					break
				}
			}
		}
		c := append([]float64(nil), points[idx]...)
		centers = append(centers, c)
		for i, p := range points {
			if ds := sqDist(p, c); ds < dist[i] {
				dist[i] = ds
			}
		}
	}
	return centers
}

// nearest returns the index of the closest centroid to p.
func nearest(centers [][]float64, p []float64) int {
	best, bestD := 0, math.MaxFloat64
	for c, ctr := range centers {
		if d := sqDist(p, ctr); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// farthestPoint returns the point with the largest distance to its
// assigned centroid.
func farthestPoint(points [][]float64, centers [][]float64, labels []int) []float64 {
	bestI, bestD := 0, -1.0
	for i, p := range points {
		if d := sqDist(p, centers[labels[i]]); d > bestD {
			bestI, bestD = i, d
		}
	}
	return points[bestI]
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
