package cluster

import (
	"math/rand"
	"testing"

	"jobgraph/internal/linalg"
)

func TestKMeansDegenerateFlagged(t *testing.T) {
	// Every point identical: no seeding can populate two clusters, so
	// after the bounded reseeds the result must carry the Degenerate
	// marker with labels still valid.
	pts := make([][]float64, 12)
	for i := range pts {
		pts[i] = []float64{3, 3}
	}
	res, err := KMeans(pts, KMeansOptions{K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degenerate {
		t.Fatalf("degenerate labeling not flagged: %v", res.Labels)
	}
	for i, l := range res.Labels {
		if l < 0 || l >= 2 {
			t.Fatalf("label[%d] = %d out of range", i, l)
		}
	}
}

func TestKMeansReseedRescuesDuplicateHeavy(t *testing.T) {
	// Two real groups buried under heavy duplication: the clustering
	// must come out non-degenerate (possibly via reseeding) and split
	// the two locations.
	var pts [][]float64
	for i := 0; i < 30; i++ {
		pts = append(pts, []float64{0, 0})
	}
	for i := 0; i < 30; i++ {
		pts = append(pts, []float64{10, 10})
	}
	for seed := int64(0); seed < 10; seed++ {
		res, err := KMeans(pts, KMeansOptions{K: 2, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if res.Degenerate {
			t.Fatalf("seed %d: separable data flagged degenerate", seed)
		}
		if res.Labels[0] == res.Labels[59] {
			t.Fatalf("seed %d: groups merged: %v", seed, res.Labels)
		}
	}
}

func TestKMeansHappyPathUnchangedByReseedLogic(t *testing.T) {
	// The reseed machinery must be invisible on healthy data: same
	// result as a plain best-of-restarts run with the same seed.
	rng := rand.New(rand.NewSource(11))
	points, _ := blobs(rng, 3, 15, 4)
	opt := KMeansOptions{K: 3, Seed: 7}
	opt.defaults()
	want := bestOfRestarts(points, opt, opt.Seed)
	got, err := KMeans(points, opt)
	if err != nil {
		t.Fatal(err)
	}
	if got.Degenerate || got.Inertia != want.Inertia {
		t.Fatalf("healthy run altered: inertia %g vs %g, degenerate %v",
			got.Inertia, want.Inertia, got.Degenerate)
	}
	for i := range want.Labels {
		if got.Labels[i] != want.Labels[i] {
			t.Fatal("healthy run labels differ from direct restarts")
		}
	}
}

func TestSpectralCleanRunNoWarnings(t *testing.T) {
	// Two clean affinity blocks: no degradation, so no warnings.
	n := 10
	a := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if (i < n/2) == (j < n/2) {
				a.Set(i, j, 1)
			} else {
				a.Set(i, j, 0.01)
			}
		}
	}
	res, err := Spectral(a, SpectralOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Warnings) != 0 {
		t.Fatalf("clean run produced warnings: %v", res.Warnings)
	}
	if res.Labels[0] == res.Labels[n-1] {
		t.Fatalf("blocks not separated: %v", res.Labels)
	}
}

func TestDistinctLabels(t *testing.T) {
	if n := distinctLabels([]int{0, 1, 1, 0, 2}); n != 3 {
		t.Fatalf("distinct = %d, want 3", n)
	}
	if n := distinctLabels(nil); n != 0 {
		t.Fatalf("distinct(nil) = %d, want 0", n)
	}
}
