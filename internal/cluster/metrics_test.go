package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"jobgraph/internal/linalg"
)

func TestARIIdenticalAndRenamed(t *testing.T) {
	a := []int{0, 0, 1, 1, 2, 2}
	b := []int{5, 5, 9, 9, 7, 7} // same partition, renamed
	got, err := ARI(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("ARI = %g, want 1", got)
	}
}

func TestARIDisagreement(t *testing.T) {
	a := []int{0, 0, 0, 1, 1, 1}
	b := []int{0, 1, 2, 0, 1, 2}
	got, err := ARI(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got > 0.01 {
		t.Fatalf("ARI = %g, want ~<=0 for crossing partitions", got)
	}
}

func TestARIKnownValue(t *testing.T) {
	// Classic example: one swap between two balanced clusters of 3.
	a := []int{0, 0, 0, 1, 1, 1}
	b := []int{0, 0, 1, 1, 1, 1}
	got, err := ARI(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Contingency: [[2,1],[0,3]]; sumJoint=1+0+3=4... compute:
	// C(2,2)=1, C(1,2)=0, C(3,2)=3 → sumJoint=4; sumA=3+3=6;
	// sumB=C(2,2)+C(4,2)=1+6=7; total=C(6,2)=15; exp=6*7/15=2.8;
	// max=(6+7)/2=6.5; ARI=(4-2.8)/(6.5-2.8)=1.2/3.7.
	want := 1.2 / 3.7
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("ARI = %g, want %g", got, want)
	}
}

func TestARIDegenerate(t *testing.T) {
	one := []int{0, 0, 0}
	if got, _ := ARI(one, one); got != 1 {
		t.Fatalf("all-one-cluster ARI = %g", got)
	}
	if got, _ := ARI([]int{0, 1, 2}, []int{4, 5, 6}); got != 1 {
		t.Fatalf("all-singletons ARI = %g", got)
	}
	if got, _ := ARI([]int{0, 0, 0}, []int{0, 1, 2}); got != 0 {
		t.Fatalf("constant-vs-singletons ARI = %g", got)
	}
	if _, err := ARI([]int{0}, []int{0, 1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := ARI(nil, nil); err == nil {
		t.Fatal("empty labelings accepted")
	}
}

func TestNMIBasics(t *testing.T) {
	a := []int{0, 0, 1, 1}
	if got, _ := NMI(a, a); math.Abs(got-1) > 1e-12 {
		t.Fatalf("NMI(self) = %g", got)
	}
	b := []int{3, 3, 8, 8}
	if got, _ := NMI(a, b); math.Abs(got-1) > 1e-12 {
		t.Fatalf("NMI(renamed) = %g", got)
	}
	// Independent labelings: near zero.
	c := []int{0, 1, 0, 1}
	got, _ := NMI(a, c)
	if got > 1e-9 {
		t.Fatalf("NMI(independent) = %g", got)
	}
	// Degenerate conventions.
	if got, _ := NMI([]int{0, 0}, []int{0, 0}); got != 1 {
		t.Fatalf("both-constant NMI = %g", got)
	}
	if got, _ := NMI([]int{0, 0}, []int{0, 1}); got != 0 {
		t.Fatalf("one-constant NMI = %g", got)
	}
}

func TestNMIBoundedProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 2 {
			return true
		}
		a := make([]int, len(raw))
		b := make([]int, len(raw))
		for i, v := range raw {
			a[i] = int(v % 4)
			b[i] = int(v % 3)
		}
		got, err := NMI(a, b)
		if err != nil {
			return false
		}
		return got >= 0 && got <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestARISymmetricProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 2 {
			return true
		}
		a := make([]int, len(raw))
		b := make([]int, len(raw))
		for i, v := range raw {
			a[i] = int(v % 5)
			b[i] = int((v / 5) % 4)
		}
		x, err1 := ARI(a, b)
		y, err2 := ARI(b, a)
		return err1 == nil && err2 == nil && math.Abs(x-y) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPurity(t *testing.T) {
	pred := []int{0, 0, 0, 1, 1, 1}
	truth := []int{0, 0, 1, 1, 1, 1}
	got, err := Purity(pred, truth)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-5.0/6.0) > 1e-12 {
		t.Fatalf("purity = %g, want 5/6", got)
	}
	if got, _ := Purity(truth, truth); got != 1 {
		t.Fatalf("self purity = %g", got)
	}
}

func TestSilhouetteSeparatedClusters(t *testing.T) {
	// Two tight far-apart clusters: silhouette near 1.
	pts := [][]float64{{0, 0}, {0.1, 0}, {10, 0}, {10.1, 0}}
	labels := []int{0, 0, 1, 1}
	d := linalg.NewMatrix(4, 4)
	for i := range pts {
		for j := range pts {
			dist, _ := linalg.Dist2(pts[i], pts[j])
			d.Set(i, j, dist)
		}
	}
	s, err := Silhouette(d, labels)
	if err != nil {
		t.Fatal(err)
	}
	if s < 0.95 {
		t.Fatalf("silhouette = %g, want near 1", s)
	}
	// Deliberately mixed labels must score clearly worse.
	bad, err := Silhouette(d, []int{0, 1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if bad >= s {
		t.Fatalf("bad labeling silhouette %g >= good %g", bad, s)
	}
}

func TestSilhouetteValidation(t *testing.T) {
	d := linalg.NewMatrix(3, 3)
	if _, err := Silhouette(d, []int{0, 0}); err == nil {
		t.Fatal("label length mismatch accepted")
	}
	if _, err := Silhouette(d, []int{0, 0, 0}); err == nil {
		t.Fatal("single cluster accepted")
	}
	if _, err := Silhouette(linalg.NewMatrix(2, 3), []int{0, 1}); err == nil {
		t.Fatal("non-square accepted")
	}
}

func TestSilhouetteSingletonCluster(t *testing.T) {
	d := linalg.NewMatrix(3, 3)
	d.Set(0, 1, 1)
	d.Set(1, 0, 1)
	d.Set(0, 2, 5)
	d.Set(2, 0, 5)
	d.Set(1, 2, 5)
	d.Set(2, 1, 5)
	s, err := Silhouette(d, []int{0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if s <= 0 {
		t.Fatalf("silhouette = %g, want > 0 (singleton contributes 0)", s)
	}
}

func TestDistanceFromSimilarity(t *testing.T) {
	sim, _ := linalg.FromRows([][]float64{{1, 0.5}, {0.5, 1}})
	d, err := DistanceFromSimilarity(sim)
	if err != nil {
		t.Fatal(err)
	}
	if d.At(0, 0) != 0 {
		t.Fatalf("self distance = %g", d.At(0, 0))
	}
	if want := math.Sqrt(1.0); math.Abs(d.At(0, 1)-want) > 1e-12 {
		t.Fatalf("distance = %g, want %g", d.At(0, 1), want)
	}
	bad, _ := linalg.FromRows([][]float64{{1, 2}, {2, 1}})
	if _, err := DistanceFromSimilarity(bad); err == nil {
		t.Fatal("similarity > 1 accepted")
	}
}

func TestSpectralThenMetricsEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	_ = rng
	aff, truth := blockAffinity([]int{12, 12, 12}, 0.9, 0.05)
	res, err := Spectral(aff, SpectralOptions{K: 3, KMeans: KMeansOptions{Seed: 5}})
	if err != nil {
		t.Fatal(err)
	}
	dist, err := DistanceFromSimilarity(aff)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Silhouette(dist, res.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if s < 0.5 {
		t.Fatalf("silhouette = %g on clean blocks", s)
	}
	nmi, _ := NMI(res.Labels, truth)
	if nmi < 0.99 {
		t.Fatalf("NMI = %g", nmi)
	}
}
