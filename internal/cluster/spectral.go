package cluster

import (
	"fmt"
	"math"

	"jobgraph/internal/linalg"
	"jobgraph/internal/obs"
)

// obsSpectralRuns counts full spectral clusterings (eigendecomposition
// plus embedded k-means); obsSpectralEigenRetries counts relaxed-
// tolerance re-decompositions after the solver hit its sweep cap.
var (
	obsSpectralRuns         = obs.Default().Counter("cluster.spectral.runs")
	obsSpectralEigenRetries = obs.Default().Counter("cluster.spectral.eigen_retries")
)

// relaxedEigenTol is the fallback convergence threshold used when the
// default-tolerance Jacobi decomposition exhausts its sweep budget. Four
// orders looser than the 1e-12 default but still far tighter than the
// cluster-separation scale, so the embedding stays trustworthy.
const relaxedEigenTol = 1e-8

// SpectralOptions configures Ng–Jordan–Weiss spectral clustering.
type SpectralOptions struct {
	K      int
	KMeans KMeansOptions // K field is overridden with SpectralOptions.K
}

// SpectralResult is the spectral clustering output.
type SpectralResult struct {
	Labels []int
	// Embedding is the row-normalized top-K eigenvector matrix the
	// labels were derived from (n×K); exposed for inspection and for
	// silhouette computation in the embedded space.
	Embedding *linalg.Matrix
	// Eigenvalues of the normalized affinity, descending. The gap after
	// the K-th value is the usual heuristic check that K is sensible.
	Eigenvalues []float64
	// Warnings records non-fatal degradations taken to produce the
	// result: a relaxed-tolerance eigendecomposition retry, a solver
	// that never converged, or a degenerate k-means labeling. Empty on
	// a clean run.
	Warnings []string
}

// Spectral clusters n items given their symmetric, non-negative affinity
// matrix (similarities, not distances) following Ng, Jordan & Weiss
// (NIPS 2001):
//
//  1. L ← D^{-1/2} A D^{-1/2} with D the diagonal degree matrix,
//  2. X ← top-K eigenvectors of L as columns,
//  3. rows of X normalized to unit length,
//  4. k-means on the rows.
//
// The paper applies exactly this to the WL similarity map to obtain its
// five job groups (§VI-A).
func Spectral(affinity *linalg.Matrix, opt SpectralOptions) (*SpectralResult, error) {
	n := affinity.Rows
	if affinity.Cols != n {
		return nil, fmt.Errorf("cluster: affinity must be square, got %dx%d", n, affinity.Cols)
	}
	if opt.K < 1 || opt.K > n {
		return nil, fmt.Errorf("cluster: k=%d out of range [1,%d]", opt.K, n)
	}
	if !affinity.IsSymmetric(1e-9) {
		return nil, fmt.Errorf("cluster: affinity matrix is not symmetric")
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if affinity.At(i, j) < 0 {
				return nil, fmt.Errorf("cluster: negative affinity at (%d,%d)", i, j)
			}
		}
	}

	// Normalized affinity L = D^{-1/2} A D^{-1/2}.
	l := affinity.Clone()
	dinv := make([]float64, n)
	for i := 0; i < n; i++ {
		var deg float64
		for j := 0; j < n; j++ {
			deg += affinity.At(i, j)
		}
		if deg <= 0 {
			// Fully isolated item (zero similarity to everything,
			// including itself). Leave its row zero; it will land in
			// whatever cluster k-means gives the zero embedding.
			dinv[i] = 0
			continue
		}
		dinv[i] = 1 / math.Sqrt(deg)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			l.Set(i, j, affinity.At(i, j)*dinv[i]*dinv[j])
		}
	}

	var warnings []string
	eig, err := linalg.SymmetricEigen(l, 0)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	if !eig.Converged {
		// The solver hit its sweep cap at the default tolerance. Retry
		// once with a relaxed threshold rather than failing the whole
		// pipeline: the embedding only needs cluster-scale accuracy.
		obsSpectralEigenRetries.Add(1)
		warnings = append(warnings, fmt.Sprintf(
			"eigensolver hit sweep cap after %d sweeps; retried with relaxed tolerance %g", eig.Sweeps, relaxedEigenTol))
		retry, rerr := linalg.SymmetricEigen(l, relaxedEigenTol)
		if rerr != nil {
			return nil, fmt.Errorf("cluster: relaxed-tolerance retry: %w", rerr)
		}
		eig = retry
		if !eig.Converged {
			warnings = append(warnings, fmt.Sprintf(
				"eigensolver still non-converged at tolerance %g; using best approximation", relaxedEigenTol))
		}
	}
	x, err := linalg.TopKEigenvectors(eig, opt.K)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	// Row-normalize.
	for i := 0; i < n; i++ {
		linalg.Normalize(x.Row(i))
	}

	points := make([][]float64, n)
	for i := 0; i < n; i++ {
		points[i] = x.Row(i)
	}
	km := opt.KMeans
	km.K = opt.K
	res, err := KMeans(points, km)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	if res.Degenerate {
		warnings = append(warnings, fmt.Sprintf(
			"k-means produced %d populated clusters for k=%d despite reseeding; groups may be merged",
			distinctLabels(res.Labels), opt.K))
	}
	obsSpectralRuns.Add(1)
	return &SpectralResult{
		Labels:      res.Labels,
		Embedding:   x,
		Eigenvalues: eig.Values,
		Warnings:    warnings,
	}, nil
}

// EigenGap returns the relative gap λ[k-1]−λ[k] of the result's spectrum
// (descending eigenvalues), the standard diagnostic for choosing K.
func (r *SpectralResult) EigenGap(k int) (float64, error) {
	if k < 1 || k >= len(r.Eigenvalues) {
		return 0, fmt.Errorf("cluster: eigen gap k=%d out of range [1,%d)", k, len(r.Eigenvalues))
	}
	return r.Eigenvalues[k-1] - r.Eigenvalues[k], nil
}
