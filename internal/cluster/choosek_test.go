package cluster

import (
	"testing"

	"jobgraph/internal/linalg"
)

func TestChooseKRecoversBlockCount(t *testing.T) {
	for _, blocks := range [][]int{
		{10, 10},
		{15, 10, 8},
		{20, 10, 6, 5, 4},
	} {
		aff, _ := blockAffinity(blocks, 0.9, 0.02)
		k, err := ChooseK(aff, 2, 8)
		if err != nil {
			t.Fatal(err)
		}
		if k != len(blocks) {
			t.Fatalf("blocks=%v: ChooseK = %d, want %d", blocks, k, len(blocks))
		}
	}
}

func TestChooseKValidation(t *testing.T) {
	aff, _ := blockAffinity([]int{5, 5}, 0.9, 0.1)
	if _, err := ChooseK(aff, 0, 3); err == nil {
		t.Fatal("minK=0 accepted")
	}
	if _, err := ChooseK(aff, 3, 2); err == nil {
		t.Fatal("maxK<minK accepted")
	}
	if _, err := ChooseK(aff, 2, 10); err == nil {
		t.Fatal("maxK>=n accepted")
	}
	if _, err := ChooseK(linalg.NewMatrix(3, 4), 1, 2); err == nil {
		t.Fatal("non-square accepted")
	}
	asym := linalg.NewMatrix(4, 4)
	asym.Set(0, 1, 1)
	if _, err := ChooseK(asym, 1, 2); err == nil {
		t.Fatal("asymmetric accepted")
	}
}

func TestChooseKRangeRespected(t *testing.T) {
	aff, _ := blockAffinity([]int{10, 10, 10}, 0.9, 0.02)
	// Forcing the range away from the true K must still return a value
	// inside the range.
	k, err := ChooseK(aff, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if k < 5 || k > 7 {
		t.Fatalf("k = %d outside [5,7]", k)
	}
}
