package cluster

import (
	"testing"

	"jobgraph/internal/linalg"
)

// blockAffinity builds a block-diagonal affinity: items in the same
// block have similarity hi, across blocks lo.
func blockAffinity(blocks []int, hi, lo float64) (*linalg.Matrix, []int) {
	n := 0
	for _, b := range blocks {
		n += b
	}
	truth := make([]int, 0, n)
	for c, b := range blocks {
		for i := 0; i < b; i++ {
			truth = append(truth, c)
		}
	}
	m := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			switch {
			case i == j:
				m.Set(i, j, 1)
			case truth[i] == truth[j]:
				m.Set(i, j, hi)
			default:
				m.Set(i, j, lo)
			}
		}
	}
	return m, truth
}

func TestSpectralRecoversBlocks(t *testing.T) {
	aff, truth := blockAffinity([]int{20, 15, 10}, 0.9, 0.05)
	res, err := Spectral(aff, SpectralOptions{K: 3, KMeans: KMeansOptions{Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	ari, err := ARI(res.Labels, truth)
	if err != nil {
		t.Fatal(err)
	}
	if ari != 1 {
		t.Fatalf("ARI = %g, want 1 on block-diagonal affinity", ari)
	}
}

func TestSpectralFiveGroupsPaperScale(t *testing.T) {
	// The paper clusters 100 jobs into 5 groups; a dominant block plus
	// four smaller ones mirrors its 75%-in-group-A outcome.
	aff, truth := blockAffinity([]int{75, 10, 6, 5, 4}, 0.85, 0.02)
	res, err := Spectral(aff, SpectralOptions{K: 5, KMeans: KMeansOptions{Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	ari, err := ARI(res.Labels, truth)
	if err != nil {
		t.Fatal(err)
	}
	if ari < 0.95 {
		t.Fatalf("ARI = %g, want ~1 at paper scale", ari)
	}
}

func TestSpectralValidation(t *testing.T) {
	aff, _ := blockAffinity([]int{4, 4}, 0.9, 0.1)
	if _, err := Spectral(aff, SpectralOptions{K: 0}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := Spectral(aff, SpectralOptions{K: 9}); err == nil {
		t.Fatal("k>n accepted")
	}
	rect := linalg.NewMatrix(3, 4)
	if _, err := Spectral(rect, SpectralOptions{K: 2}); err == nil {
		t.Fatal("non-square accepted")
	}
	asym := linalg.NewMatrix(3, 3)
	asym.Set(0, 1, 0.5)
	if _, err := Spectral(asym, SpectralOptions{K: 2}); err == nil {
		t.Fatal("asymmetric accepted")
	}
	neg, _ := blockAffinity([]int{2, 2}, 0.5, 0.1)
	neg.Set(0, 1, -0.5)
	neg.Set(1, 0, -0.5)
	if _, err := Spectral(neg, SpectralOptions{K: 2}); err == nil {
		t.Fatal("negative affinity accepted")
	}
}

func TestSpectralEigenvaluesDescending(t *testing.T) {
	aff, _ := blockAffinity([]int{10, 10}, 0.8, 0.1)
	res, err := Spectral(aff, SpectralOptions{K: 2, KMeans: KMeansOptions{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Eigenvalues); i++ {
		if res.Eigenvalues[i] > res.Eigenvalues[i-1]+1e-12 {
			t.Fatalf("eigenvalues not descending: %v", res.Eigenvalues)
		}
	}
	gap, err := res.EigenGap(2)
	if err != nil {
		t.Fatal(err)
	}
	if gap <= 0 {
		t.Fatalf("eigen gap after true K should be positive, got %g", gap)
	}
	if _, err := res.EigenGap(0); err == nil {
		t.Fatal("gap k=0 accepted")
	}
	if _, err := res.EigenGap(len(res.Eigenvalues)); err == nil {
		t.Fatal("gap k=n accepted")
	}
}

func TestSpectralEmbeddingRowsUnit(t *testing.T) {
	aff, _ := blockAffinity([]int{8, 8}, 0.9, 0.1)
	res, err := Spectral(aff, SpectralOptions{K: 2, KMeans: KMeansOptions{Seed: 2}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < res.Embedding.Rows; i++ {
		n := linalg.Norm2(res.Embedding.Row(i))
		if n < 0.999 || n > 1.001 {
			t.Fatalf("embedding row %d norm = %g", i, n)
		}
	}
}

func TestSpectralIsolatedItem(t *testing.T) {
	// One item with zero affinity to everything (including itself)
	// must not crash the degree normalization.
	m := linalg.NewMatrix(5, 5)
	for i := 0; i < 4; i++ {
		m.Set(i, i, 1)
		for j := 0; j < 4; j++ {
			if i != j {
				m.Set(i, j, 0.8)
			}
		}
	}
	res, err := Spectral(m, SpectralOptions{K: 2, KMeans: KMeansOptions{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Labels) != 5 {
		t.Fatalf("labels = %v", res.Labels)
	}
}
