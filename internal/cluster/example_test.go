package cluster_test

import (
	"fmt"

	"jobgraph/internal/cluster"
	"jobgraph/internal/linalg"
)

func ExampleSpectral() {
	// A block-diagonal affinity: two tight groups of three items.
	aff := linalg.NewMatrix(6, 6)
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			switch {
			case i == j:
				aff.Set(i, j, 1)
			case (i < 3) == (j < 3):
				aff.Set(i, j, 0.9)
			default:
				aff.Set(i, j, 0.05)
			}
		}
	}
	res, err := cluster.Spectral(aff, cluster.SpectralOptions{
		K:      2,
		KMeans: cluster.KMeansOptions{Seed: 1},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Labels[0] == res.Labels[1], res.Labels[1] == res.Labels[2])
	fmt.Println(res.Labels[0] != res.Labels[3])
	// Output:
	// true true
	// true
}
