package cluster

import (
	"fmt"
	"math"

	"jobgraph/internal/linalg"
)

// Linkage selects how inter-cluster distance is computed during
// agglomerative clustering.
type Linkage int

// Supported linkage criteria.
const (
	// SingleLinkage merges on the minimum pairwise distance.
	SingleLinkage Linkage = iota
	// CompleteLinkage merges on the maximum pairwise distance.
	CompleteLinkage
	// AverageLinkage merges on the mean pairwise distance (UPGMA).
	AverageLinkage
)

// String names the linkage.
func (l Linkage) String() string {
	switch l {
	case SingleLinkage:
		return "single"
	case CompleteLinkage:
		return "complete"
	case AverageLinkage:
		return "average"
	default:
		return fmt.Sprintf("linkage(%d)", int(l))
	}
}

// Merge records one agglomeration step of the dendrogram.
type Merge struct {
	A, B     int     // cluster ids merged (initial clusters are 0..n-1)
	Into     int     // id of the new cluster (n, n+1, ...)
	Distance float64 // linkage distance at which the merge happened
}

// HierarchicalResult is the full dendrogram plus a flat cut.
type HierarchicalResult struct {
	Labels  []int   // flat clustering from cutting the dendrogram at K
	Merges  []Merge // n-1 merges, in order of increasing distance
	Heights []float64
}

// Hierarchical performs agglomerative clustering on a pairwise distance
// matrix and cuts the dendrogram into k flat clusters — the third
// comparator alongside spectral clustering (paper) and feature-space
// k-means (prior work [14]). The Lance–Williams recurrence updates
// distances in O(n²) per merge; fine for paper-scale samples.
func Hierarchical(dist *linalg.Matrix, k int, linkage Linkage) (*HierarchicalResult, error) {
	n := dist.Rows
	if dist.Cols != n {
		return nil, fmt.Errorf("cluster: distance matrix must be square")
	}
	if k < 1 || k > n {
		return nil, fmt.Errorf("cluster: k=%d out of range [1,%d]", k, n)
	}
	switch linkage {
	case SingleLinkage, CompleteLinkage, AverageLinkage:
	default:
		return nil, fmt.Errorf("cluster: unknown linkage %d", int(linkage))
	}
	if !dist.IsSymmetric(1e-9) {
		return nil, fmt.Errorf("cluster: distance matrix is not symmetric")
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if dist.At(i, j) < 0 {
				return nil, fmt.Errorf("cluster: negative distance at (%d,%d)", i, j)
			}
		}
	}

	// active cluster id -> member count; d holds current inter-cluster
	// distances keyed by unordered id pair.
	sizes := make(map[int]int, 2*n)
	members := make(map[int][]int, 2*n) // cluster id -> original points
	for i := 0; i < n; i++ {
		sizes[i] = 1
		members[i] = []int{i}
	}
	type pair [2]int
	key := func(a, b int) pair {
		if a > b {
			a, b = b, a
		}
		return pair{a, b}
	}
	d := make(map[pair]float64, n*n/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d[key(i, j)] = dist.At(i, j)
		}
	}

	res := &HierarchicalResult{}
	active := make(map[int]bool, n)
	for i := 0; i < n; i++ {
		active[i] = true
	}
	next := n
	for len(active) > 1 {
		// Find the closest active pair (deterministic tie-break on ids).
		bestA, bestB := -1, -1
		bestD := math.Inf(1)
		for p, dd := range d {
			if !active[p[0]] || !active[p[1]] {
				continue
			}
			if dd < bestD || (dd == bestD && (bestA == -1 || p[0] < bestA || (p[0] == bestA && p[1] < bestB))) {
				bestA, bestB, bestD = p[0], p[1], dd
			}
		}
		// Merge bestA+bestB into `next`.
		for id := range active {
			if id == bestA || id == bestB {
				continue
			}
			da := d[key(bestA, id)]
			db := d[key(bestB, id)]
			var nd float64
			switch linkage {
			case SingleLinkage:
				nd = math.Min(da, db)
			case CompleteLinkage:
				nd = math.Max(da, db)
			case AverageLinkage:
				sa, sb := float64(sizes[bestA]), float64(sizes[bestB])
				nd = (sa*da + sb*db) / (sa + sb)
			}
			d[key(next, id)] = nd
		}
		delete(active, bestA)
		delete(active, bestB)
		active[next] = true
		sizes[next] = sizes[bestA] + sizes[bestB]
		members[next] = append(append([]int(nil), members[bestA]...), members[bestB]...)
		res.Merges = append(res.Merges, Merge{A: bestA, B: bestB, Into: next, Distance: bestD})
		res.Heights = append(res.Heights, bestD)
		next++
	}

	// Cut: undo the last k-1 merges. Clusters remaining after n-k
	// merges are the flat clustering.
	labels := make([]int, n)
	clusterIDs := make(map[int]bool, n)
	for i := 0; i < n; i++ {
		clusterIDs[i] = true
	}
	for _, m := range res.Merges[:n-k] {
		delete(clusterIDs, m.A)
		delete(clusterIDs, m.B)
		clusterIDs[m.Into] = true
	}
	// Relabel compactly in ascending cluster-id order.
	compact := make(map[int]int, k)
	for id := 0; id < next; id++ {
		if clusterIDs[id] {
			compact[id] = len(compact)
		}
	}
	for id := range clusterIDs {
		for _, pt := range members[id] {
			labels[pt] = compact[id]
		}
	}
	res.Labels = labels
	return res, nil
}
