package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// blobs generates k well-separated Gaussian blobs and returns the points
// plus ground-truth labels.
func blobs(rng *rand.Rand, k, perCluster int, sep float64) ([][]float64, []int) {
	var points [][]float64
	var truth []int
	for c := 0; c < k; c++ {
		cx := float64(c) * sep
		cy := float64(c%2) * sep
		for i := 0; i < perCluster; i++ {
			points = append(points, []float64{
				cx + rng.NormFloat64()*0.2,
				cy + rng.NormFloat64()*0.2,
			})
			truth = append(truth, c)
		}
	}
	return points, truth
}

func TestKMeansSeparatedBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	points, truth := blobs(rng, 3, 30, 10)
	res, err := KMeans(points, KMeansOptions{K: 3, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	ari, err := ARI(res.Labels, truth)
	if err != nil {
		t.Fatal(err)
	}
	if ari != 1 {
		t.Fatalf("ARI = %g, want 1 on well-separated blobs", ari)
	}
}

func TestKMeansValidation(t *testing.T) {
	if _, err := KMeans(nil, KMeansOptions{K: 1}); err == nil {
		t.Fatal("empty input accepted")
	}
	pts := [][]float64{{1}, {2}}
	if _, err := KMeans(pts, KMeansOptions{K: 0}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := KMeans(pts, KMeansOptions{K: 3}); err == nil {
		t.Fatal("k>n accepted")
	}
	if _, err := KMeans([][]float64{{1, 2}, {1}}, KMeansOptions{K: 1}); err == nil {
		t.Fatal("ragged points accepted")
	}
}

func TestKMeansK1(t *testing.T) {
	pts := [][]float64{{0, 0}, {2, 0}, {4, 0}}
	res, err := KMeans(pts, KMeansOptions{K: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Centers[0][0] != 2 || res.Centers[0][1] != 0 {
		t.Fatalf("centroid = %v, want [2 0]", res.Centers[0])
	}
	// Inertia = 4 + 0 + 4.
	if res.Inertia != 8 {
		t.Fatalf("inertia = %g, want 8", res.Inertia)
	}
}

func TestKMeansKEqualsN(t *testing.T) {
	pts := [][]float64{{0}, {5}, {10}}
	res, err := KMeans(pts, KMeansOptions{K: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia != 0 {
		t.Fatalf("inertia = %g, want 0 when every point is a centroid", res.Inertia)
	}
	seen := map[int]bool{}
	for _, l := range res.Labels {
		seen[l] = true
	}
	if len(seen) != 3 {
		t.Fatalf("labels = %v, want 3 distinct", res.Labels)
	}
}

func TestKMeansIdenticalPoints(t *testing.T) {
	pts := [][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}}
	res, err := KMeans(pts, KMeansOptions{K: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia != 0 {
		t.Fatalf("inertia = %g, want 0", res.Inertia)
	}
}

func TestKMeansDeterministicWithSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	points, _ := blobs(rng, 4, 20, 6)
	a, err := KMeans(points, KMeansOptions{K: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMeans(points, KMeansOptions{K: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("same seed produced different labelings")
		}
	}
}

func TestKMeansInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		d := 1 + rng.Intn(4)
		pts := make([][]float64, n)
		for i := range pts {
			p := make([]float64, d)
			for j := range p {
				p[j] = rng.NormFloat64() * 5
			}
			pts[i] = p
		}
		k := 1 + rng.Intn(n)
		res, err := KMeans(pts, KMeansOptions{K: k, Seed: seed, Restarts: 2})
		if err != nil {
			return false
		}
		if len(res.Labels) != n || len(res.Centers) != k {
			return false
		}
		for _, l := range res.Labels {
			if l < 0 || l >= k {
				return false
			}
		}
		if res.Inertia < 0 || math.IsNaN(res.Inertia) {
			return false
		}
		// Every point must be assigned to its nearest centroid.
		for i, p := range pts {
			if nearest(res.Centers, p) != res.Labels[i] {
				// Ties can break either way; accept equal distances.
				got := sqDist(p, res.Centers[res.Labels[i]])
				best := sqDist(p, res.Centers[nearest(res.Centers, p)])
				if got-best > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
