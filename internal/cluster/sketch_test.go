package cluster

import (
	"math/rand"
	"testing"
)

// plantedSparse builds perGroup points per group, each group supported
// on a disjoint feature block plus a little shared noise — clusters any
// cosine method must recover.
func plantedSparse(rng *rand.Rand, groups, perGroup int) ([]map[int]float64, []int) {
	var points []map[int]float64
	var truth []int
	for g := 0; g < groups; g++ {
		base := g * 1000
		for i := 0; i < perGroup; i++ {
			v := make(map[int]float64)
			for f := 0; f < 20; f++ {
				v[base+f] = 1 + float64(rng.Intn(3))
			}
			// Sparse cross-group noise.
			v[9000+rng.Intn(10)] = 1
			points = append(points, v)
			truth = append(truth, g)
		}
	}
	return points, truth
}

func TestMiniBatchKMeansRecoversPlantedClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	points, truth := plantedSparse(rng, 3, 40)
	res, err := MiniBatchKMeans(points, MiniBatchKMeansOptions{K: 3, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Labels) != len(points) {
		t.Fatalf("labels %d, want %d", len(res.Labels), len(points))
	}
	ari, err := ARI(res.Labels, truth)
	if err != nil {
		t.Fatal(err)
	}
	if ari < 0.95 {
		t.Fatalf("ARI %.3f vs planted clusters", ari)
	}
	if res.Inertia < 0 {
		t.Fatalf("negative inertia %v", res.Inertia)
	}
}

func TestMiniBatchKMeansDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	points, _ := plantedSparse(rng, 4, 25)
	a, err := MiniBatchKMeans(points, MiniBatchKMeansOptions{K: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := MiniBatchKMeans(points, MiniBatchKMeansOptions{K: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatalf("label %d differs across identical runs", i)
		}
	}
}

func TestMiniBatchKMeansValidation(t *testing.T) {
	if _, err := MiniBatchKMeans(nil, MiniBatchKMeansOptions{K: 2}); err == nil {
		t.Fatal("zero points accepted")
	}
	pts := []map[int]float64{{1: 1}, {2: 1}}
	if _, err := MiniBatchKMeans(pts, MiniBatchKMeansOptions{K: 3}); err == nil {
		t.Fatal("k > n accepted")
	}
	if _, err := MiniBatchKMeans(pts, MiniBatchKMeansOptions{K: 0}); err == nil {
		t.Fatal("k = 0 accepted")
	}
}

func TestSketchKMedoidsRecoversPlantedClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	points, truth := plantedSparse(rng, 3, 30)
	res, err := SketchKMedoids(points, nil, SketchKMedoidsOptions{K: 3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	ari, err := ARI(res.Labels, truth)
	if err != nil {
		t.Fatal(err)
	}
	if ari < 0.95 {
		t.Fatalf("ARI %.3f vs planted clusters", ari)
	}
	if len(res.Medoids) != 3 {
		t.Fatalf("medoids %v", res.Medoids)
	}
	for c, m := range res.Medoids {
		if res.Labels[m] != c {
			t.Fatalf("medoid %d of cluster %d labeled %d", m, c, res.Labels[m])
		}
	}
}

func TestSketchKMedoidsWithNeighborLists(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	points, truth := plantedSparse(rng, 3, 20)
	// Candidate graph: every point's same-group peers — what LSH
	// produces on well-separated clusters.
	neighbors := make([][]int32, len(points))
	for i := range points {
		for j := range points {
			if i != j && truth[i] == truth[j] {
				neighbors[i] = append(neighbors[i], int32(j))
			}
		}
	}
	res, err := SketchKMedoids(points, neighbors, SketchKMedoidsOptions{K: 3, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	ari, err := ARI(res.Labels, truth)
	if err != nil {
		t.Fatal(err)
	}
	if ari < 0.95 {
		t.Fatalf("ARI %.3f vs planted clusters", ari)
	}
}

func TestSketchKMedoidsValidation(t *testing.T) {
	pts := []map[int]float64{{1: 1}, {2: 1}}
	if _, err := SketchKMedoids(nil, nil, SketchKMedoidsOptions{K: 1}); err == nil {
		t.Fatal("zero points accepted")
	}
	if _, err := SketchKMedoids(pts, [][]int32{{1}}, SketchKMedoidsOptions{K: 1}); err == nil {
		t.Fatal("short neighbour list accepted")
	}
	if _, err := SketchKMedoids(pts, [][]int32{{5}, {}}, SketchKMedoidsOptions{K: 1}); err == nil {
		t.Fatal("out-of-range neighbour accepted")
	}
}

func TestSketchKMedoidsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	points, _ := plantedSparse(rng, 2, 30)
	a, err := SketchKMedoids(points, nil, SketchKMedoidsOptions{K: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SketchKMedoids(points, nil, SketchKMedoidsOptions{K: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatalf("label %d differs across identical runs", i)
		}
	}
}
