package cluster

import (
	"fmt"
	"math"

	"jobgraph/internal/linalg"
)

// ChooseK estimates the number of clusters in a similarity matrix with
// the eigengap heuristic: compute the spectrum of the normalized
// affinity and return the k in [minK, maxK] after which the largest
// relative drop in eigenvalue occurs. The paper fixes k=5 by
// inspection; this automates the same inspection for new traces.
func ChooseK(affinity *linalg.Matrix, minK, maxK int) (int, error) {
	n := affinity.Rows
	if affinity.Cols != n {
		return 0, fmt.Errorf("cluster: affinity must be square")
	}
	if minK < 1 || maxK < minK || maxK >= n {
		return 0, fmt.Errorf("cluster: bad K range [%d,%d] for n=%d", minK, maxK, n)
	}
	if !affinity.IsSymmetric(1e-9) {
		return 0, fmt.Errorf("cluster: affinity matrix is not symmetric")
	}

	// Same normalization as Spectral.
	l := affinity.Clone()
	dinv := make([]float64, n)
	for i := 0; i < n; i++ {
		var deg float64
		for j := 0; j < n; j++ {
			deg += affinity.At(i, j)
		}
		if deg > 0 {
			dinv[i] = 1 / math.Sqrt(deg)
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			l.Set(i, j, affinity.At(i, j)*dinv[i]*dinv[j])
		}
	}
	eig, err := linalg.SymmetricEigen(l, 0)
	if err != nil {
		return 0, fmt.Errorf("cluster: %w", err)
	}

	bestK, bestGap := minK, math.Inf(-1)
	for k := minK; k <= maxK; k++ {
		gap := eig.Values[k-1] - eig.Values[k]
		if gap > bestGap {
			bestGap = gap
			bestK = k
		}
	}
	return bestK, nil
}
