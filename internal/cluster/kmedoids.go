package cluster

import (
	"fmt"
	"math"
	"math/rand"

	"jobgraph/internal/linalg"
)

// KMedoidsOptions configures the PAM-style k-medoids clustering.
type KMedoidsOptions struct {
	K        int
	MaxIter  int // swap rounds; default 50
	Restarts int // independent seedings; default 4
	Seed     int64
}

func (o *KMedoidsOptions) defaults() {
	if o.MaxIter <= 0 {
		o.MaxIter = 50
	}
	if o.Restarts <= 0 {
		o.Restarts = 4
	}
}

// KMedoidsResult is the best clustering found across restarts.
type KMedoidsResult struct {
	Labels  []int // cluster per point, in [0, K)
	Medoids []int // point index serving as each cluster's center
	Cost    float64
}

// KMedoids clusters n items given their pairwise distance matrix using
// the alternate (Voronoi) iteration of PAM: assign every point to its
// nearest medoid, then re-center each cluster on its cost-minimizing
// member. Unlike spectral clustering it needs no eigendecomposition and
// its centers are actual jobs — the exemplars of Figure 8 fall out for
// free — at the cost of a weaker global objective.
func KMedoids(dist *linalg.Matrix, opt KMedoidsOptions) (*KMedoidsResult, error) {
	n := dist.Rows
	if dist.Cols != n {
		return nil, fmt.Errorf("cluster: distance matrix must be square")
	}
	if opt.K < 1 || opt.K > n {
		return nil, fmt.Errorf("cluster: k=%d out of range [1,%d]", opt.K, n)
	}
	if !dist.IsSymmetric(1e-9) {
		return nil, fmt.Errorf("cluster: distance matrix is not symmetric")
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if dist.At(i, j) < 0 {
				return nil, fmt.Errorf("cluster: negative distance at (%d,%d)", i, j)
			}
		}
	}
	opt.defaults()
	rng := rand.New(rand.NewSource(opt.Seed))

	var best *KMedoidsResult
	for r := 0; r < opt.Restarts; r++ {
		res := pamOnce(dist, opt.K, opt.MaxIter, rng)
		if best == nil || res.Cost < best.Cost {
			best = res
		}
	}
	return best, nil
}

func pamOnce(dist *linalg.Matrix, k, maxIter int, rng *rand.Rand) *KMedoidsResult {
	n := dist.Rows
	// Greedy D²-style seeding: first medoid random, then farthest-from-
	// current-medoids points (deterministic given the RNG).
	medoids := make([]int, 0, k)
	medoids = append(medoids, rng.Intn(n))
	minDist := make([]float64, n)
	for i := range minDist {
		minDist[i] = dist.At(i, medoids[0])
	}
	for len(medoids) < k {
		far, farD := 0, -1.0
		for i, d := range minDist {
			if d > farD {
				far, farD = i, d
			}
		}
		medoids = append(medoids, far)
		for i := range minDist {
			if d := dist.At(i, far); d < minDist[i] {
				minDist[i] = d
			}
		}
	}

	labels := make([]int, n)
	assign := func() float64 {
		var cost float64
		for i := 0; i < n; i++ {
			bestC, bestD := 0, math.MaxFloat64
			for c, m := range medoids {
				if d := dist.At(i, m); d < bestD {
					bestC, bestD = c, d
				}
			}
			labels[i] = bestC
			cost += bestD
		}
		return cost
	}
	cost := assign()

	for it := 0; it < maxIter; it++ {
		changed := false
		for c := range medoids {
			// Re-center cluster c on its cost-minimizing member.
			bestM, bestCost := medoids[c], math.MaxFloat64
			for i := 0; i < n; i++ {
				if labels[i] != c {
					continue
				}
				var s float64
				for j := 0; j < n; j++ {
					if labels[j] == c {
						s += dist.At(i, j)
					}
				}
				if s < bestCost {
					bestM, bestCost = i, s
				}
			}
			if bestM != medoids[c] {
				medoids[c] = bestM
				changed = true
			}
		}
		if !changed {
			break
		}
		cost = assign()
	}
	return &KMedoidsResult{
		Labels:  append([]int(nil), labels...),
		Medoids: append([]int(nil), medoids...),
		Cost:    cost,
	}
}
