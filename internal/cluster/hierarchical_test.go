package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"

	"jobgraph/internal/linalg"
)

// distFromPoints builds a Euclidean distance matrix.
func distFromPoints(pts [][]float64) *linalg.Matrix {
	n := len(pts)
	m := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			d, _ := linalg.Dist2(pts[i], pts[j])
			m.Set(i, j, d)
		}
	}
	return m
}

func TestHierarchicalRecoversBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	points, truth := blobs(rng, 3, 15, 10)
	dist := distFromPoints(points)
	for _, link := range []Linkage{SingleLinkage, CompleteLinkage, AverageLinkage} {
		res, err := Hierarchical(dist, 3, link)
		if err != nil {
			t.Fatal(err)
		}
		ari, err := ARI(res.Labels, truth)
		if err != nil {
			t.Fatal(err)
		}
		if ari != 1 {
			t.Fatalf("%s linkage ARI = %g, want 1", link, ari)
		}
	}
}

func TestHierarchicalDendrogramShape(t *testing.T) {
	pts := [][]float64{{0}, {1}, {10}, {11}}
	res, err := Hierarchical(distFromPoints(pts), 2, AverageLinkage)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Merges) != 3 {
		t.Fatalf("merges = %d, want n-1 = 3", len(res.Merges))
	}
	// First merges at distance 1 (the two tight pairs), last at the big
	// gap.
	if res.Heights[0] != 1 || res.Heights[1] != 1 {
		t.Fatalf("heights = %v", res.Heights)
	}
	if res.Heights[2] <= res.Heights[1] {
		t.Fatalf("final merge height %g not the largest", res.Heights[2])
	}
	// Cut at 2: {0,1} and {2,3}.
	if res.Labels[0] != res.Labels[1] || res.Labels[2] != res.Labels[3] ||
		res.Labels[0] == res.Labels[2] {
		t.Fatalf("labels = %v", res.Labels)
	}
}

func TestHierarchicalSingleVsCompleteChaining(t *testing.T) {
	// A chain of equidistant points: single linkage chains everything
	// together early; complete linkage resists. Both must still produce
	// valid k=2 cuts.
	pts := [][]float64{{0}, {1}, {2}, {3}, {4}, {5}}
	dist := distFromPoints(pts)
	for _, link := range []Linkage{SingleLinkage, CompleteLinkage} {
		res, err := Hierarchical(dist, 2, link)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[int]bool{}
		for _, l := range res.Labels {
			seen[l] = true
		}
		if len(seen) != 2 {
			t.Fatalf("%s linkage produced %d clusters", link, len(seen))
		}
	}
}

func TestHierarchicalValidation(t *testing.T) {
	dist := distFromPoints([][]float64{{0}, {1}, {2}})
	if _, err := Hierarchical(dist, 0, AverageLinkage); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := Hierarchical(dist, 4, AverageLinkage); err == nil {
		t.Fatal("k>n accepted")
	}
	if _, err := Hierarchical(dist, 2, Linkage(9)); err == nil {
		t.Fatal("unknown linkage accepted")
	}
	if _, err := Hierarchical(linalg.NewMatrix(2, 3), 1, AverageLinkage); err == nil {
		t.Fatal("non-square accepted")
	}
	neg := linalg.NewMatrix(2, 2)
	neg.Set(0, 1, -1)
	neg.Set(1, 0, -1)
	if _, err := Hierarchical(neg, 1, AverageLinkage); err == nil {
		t.Fatal("negative distance accepted")
	}
	asym := linalg.NewMatrix(2, 2)
	asym.Set(0, 1, 1)
	if _, err := Hierarchical(asym, 1, AverageLinkage); err == nil {
		t.Fatal("asymmetric accepted")
	}
}

func TestHierarchicalKEqualsN(t *testing.T) {
	pts := [][]float64{{0}, {5}, {9}}
	res, err := Hierarchical(distFromPoints(pts), 3, AverageLinkage)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, l := range res.Labels {
		seen[l] = true
	}
	if len(seen) != 3 {
		t.Fatalf("labels = %v", res.Labels)
	}
}

func TestHierarchicalK1(t *testing.T) {
	pts := [][]float64{{0}, {5}, {9}}
	res, err := Hierarchical(distFromPoints(pts), 1, CompleteLinkage)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range res.Labels {
		if l != 0 {
			t.Fatalf("labels = %v", res.Labels)
		}
	}
}

func TestHierarchicalInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(25)
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = []float64{rng.NormFloat64() * 10, rng.NormFloat64() * 10}
		}
		dist := distFromPoints(pts)
		k := 1 + rng.Intn(n)
		link := []Linkage{SingleLinkage, CompleteLinkage, AverageLinkage}[rng.Intn(3)]
		res, err := Hierarchical(dist, k, link)
		if err != nil {
			return false
		}
		// Exactly k clusters, labels in [0,k).
		seen := map[int]bool{}
		for _, l := range res.Labels {
			if l < 0 || l >= k {
				return false
			}
			seen[l] = true
		}
		if len(seen) != k {
			return false
		}
		// Dendrogram has n-1 merges with monotone heights for
		// complete/average linkage (single can also invert only never —
		// all three Lance-Williams forms here are monotone).
		if len(res.Merges) != n-1 {
			return false
		}
		for i := 1; i < len(res.Heights); i++ {
			if res.Heights[i] < res.Heights[i-1]-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestHierarchicalOnSimilarityPipeline(t *testing.T) {
	// End-to-end on a block affinity, via kernel-distance conversion.
	aff, truth := blockAffinity([]int{12, 8, 6}, 0.9, 0.05)
	dist, err := DistanceFromSimilarity(aff)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Hierarchical(dist, 3, AverageLinkage)
	if err != nil {
		t.Fatal(err)
	}
	ari, err := ARI(res.Labels, truth)
	if err != nil {
		t.Fatal(err)
	}
	if ari != 1 {
		t.Fatalf("ARI = %g", ari)
	}
}
