package cluster

import (
	"fmt"
	"math"

	"jobgraph/internal/linalg"
)

// Silhouette returns the mean silhouette coefficient of a labeling given
// a pairwise distance matrix: for each point, b−a / max(a,b) with a the
// mean intra-cluster distance and b the smallest mean distance to
// another cluster. Values near 1 indicate tight, well-separated
// clusters. Points in singleton clusters contribute 0 (the sklearn
// convention).
func Silhouette(dist *linalg.Matrix, labels []int) (float64, error) {
	n := dist.Rows
	if dist.Cols != n {
		return 0, fmt.Errorf("cluster: distance matrix must be square")
	}
	if len(labels) != n {
		return 0, fmt.Errorf("cluster: %d labels for %d points", len(labels), n)
	}
	sizes := make(map[int]int)
	for _, l := range labels {
		sizes[l]++
	}
	if len(sizes) < 2 {
		return 0, fmt.Errorf("cluster: silhouette needs >=2 clusters, got %d", len(sizes))
	}

	var total float64
	for i := 0; i < n; i++ {
		li := labels[i]
		if sizes[li] == 1 {
			continue // contributes 0
		}
		sums := make(map[int]float64)
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			sums[labels[j]] += dist.At(i, j)
		}
		a := sums[li] / float64(sizes[li]-1)
		b := math.MaxFloat64
		for l, s := range sums {
			if l == li {
				continue
			}
			if m := s / float64(sizes[l]); m < b {
				b = m
			}
		}
		if mx := math.Max(a, b); mx > 0 {
			total += (b - a) / mx
		}
	}
	return total / float64(n), nil
}

// DistanceFromSimilarity converts a normalized similarity matrix
// (entries in [0,1], unit diagonal) to the induced kernel distance
// d(i,j) = √(2 − 2·s(i,j)), the Euclidean distance in the kernel's
// feature space.
func DistanceFromSimilarity(sim *linalg.Matrix) (*linalg.Matrix, error) {
	if sim.Rows != sim.Cols {
		return nil, fmt.Errorf("cluster: similarity matrix must be square")
	}
	d := linalg.NewMatrix(sim.Rows, sim.Cols)
	for i := 0; i < sim.Rows; i++ {
		for j := 0; j < sim.Cols; j++ {
			s := sim.At(i, j)
			if s < 0 || s > 1 {
				return nil, fmt.Errorf("cluster: similarity (%d,%d)=%g outside [0,1]", i, j, s)
			}
			v := 2 - 2*s
			if v < 0 {
				v = 0
			}
			d.Set(i, j, math.Sqrt(v))
		}
	}
	return d, nil
}

// contingency builds the contingency table between two labelings.
func contingency(a, b []int) (map[[2]int]int, map[int]int, map[int]int, error) {
	if len(a) != len(b) {
		return nil, nil, nil, fmt.Errorf("cluster: labelings differ in length: %d vs %d", len(a), len(b))
	}
	if len(a) == 0 {
		return nil, nil, nil, fmt.Errorf("cluster: empty labelings")
	}
	joint := make(map[[2]int]int)
	ca := make(map[int]int)
	cb := make(map[int]int)
	for i := range a {
		joint[[2]int{a[i], b[i]}]++
		ca[a[i]]++
		cb[b[i]]++
	}
	return joint, ca, cb, nil
}

func choose2(n int) float64 { return float64(n) * float64(n-1) / 2 }

// ARI returns the adjusted Rand index between two labelings: 1 for
// identical partitions (up to renaming), ~0 for independent ones, and
// possibly negative for adversarial disagreement.
func ARI(a, b []int) (float64, error) {
	joint, ca, cb, err := contingency(a, b)
	if err != nil {
		return 0, err
	}
	n := len(a)
	var sumJoint, sumA, sumB float64
	for _, v := range joint {
		sumJoint += choose2(v)
	}
	for _, v := range ca {
		sumA += choose2(v)
	}
	for _, v := range cb {
		sumB += choose2(v)
	}
	total := choose2(n)
	if total == 0 {
		return 1, nil // single point: partitions trivially agree
	}
	expected := sumA * sumB / total
	maxIndex := (sumA + sumB) / 2
	if maxIndex == expected {
		// Degenerate: both partitions are all-singletons or all-one-
		// cluster; identical by construction check.
		if sumJoint == expected {
			return 1, nil
		}
		return 0, nil
	}
	return (sumJoint - expected) / (maxIndex - expected), nil
}

// NMI returns the normalized mutual information between two labelings,
// normalized by the arithmetic mean of the entropies (sklearn default).
// Both-constant labelings return 1; one-constant returns 0.
func NMI(a, b []int) (float64, error) {
	joint, ca, cb, err := contingency(a, b)
	if err != nil {
		return 0, err
	}
	n := float64(len(a))
	var mi float64
	for key, v := range joint {
		pxy := float64(v) / n
		px := float64(ca[key[0]]) / n
		py := float64(cb[key[1]]) / n
		mi += pxy * math.Log(pxy/(px*py))
	}
	ha := entropy(ca, n)
	hb := entropy(cb, n)
	if ha == 0 && hb == 0 {
		return 1, nil
	}
	if ha == 0 || hb == 0 {
		return 0, nil
	}
	v := mi / ((ha + hb) / 2)
	if v < 0 {
		v = 0 // floating point: MI is non-negative in exact arithmetic
	}
	if v > 1 {
		v = 1
	}
	return v, nil
}

func entropy(counts map[int]int, n float64) float64 {
	var h float64
	for _, c := range counts {
		p := float64(c) / n
		if p > 0 {
			h -= p * math.Log(p)
		}
	}
	return h
}

// Purity returns the fraction of points whose predicted cluster's
// majority true class matches their own true class.
func Purity(pred, truth []int) (float64, error) {
	joint, _, _, err := contingency(pred, truth)
	if err != nil {
		return 0, err
	}
	majority := make(map[int]int) // pred cluster -> best joint count
	for key, v := range joint {
		if v > majority[key[0]] {
			majority[key[0]] = v
		}
	}
	var correct int
	for _, v := range majority {
		correct += v
	}
	return float64(correct) / float64(len(pred)), nil
}
