package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"

	"jobgraph/internal/linalg"
)

func TestKMedoidsRecoversBlocks(t *testing.T) {
	aff, truth := blockAffinity([]int{15, 12, 8}, 0.9, 0.05)
	dist, err := DistanceFromSimilarity(aff)
	if err != nil {
		t.Fatal(err)
	}
	res, err := KMedoids(dist, KMedoidsOptions{K: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ari, err := ARI(res.Labels, truth)
	if err != nil {
		t.Fatal(err)
	}
	if ari != 1 {
		t.Fatalf("ARI = %g, want 1 on block distances", ari)
	}
}

func TestKMedoidsMedoidsAreClusterMembers(t *testing.T) {
	aff, _ := blockAffinity([]int{10, 10}, 0.8, 0.1)
	dist, err := DistanceFromSimilarity(aff)
	if err != nil {
		t.Fatal(err)
	}
	res, err := KMedoids(dist, KMedoidsOptions{K: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Medoids) != 2 {
		t.Fatalf("medoids = %v", res.Medoids)
	}
	for c, m := range res.Medoids {
		if res.Labels[m] != c {
			t.Fatalf("medoid %d of cluster %d is labeled %d", m, c, res.Labels[m])
		}
	}
}

func TestKMedoidsValidation(t *testing.T) {
	dist := linalg.NewMatrix(3, 3)
	if _, err := KMedoids(dist, KMedoidsOptions{K: 0}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := KMedoids(dist, KMedoidsOptions{K: 4}); err == nil {
		t.Fatal("k>n accepted")
	}
	if _, err := KMedoids(linalg.NewMatrix(2, 3), KMedoidsOptions{K: 1}); err == nil {
		t.Fatal("non-square accepted")
	}
	neg := linalg.NewMatrix(2, 2)
	neg.Set(0, 1, -1)
	neg.Set(1, 0, -1)
	if _, err := KMedoids(neg, KMedoidsOptions{K: 1}); err == nil {
		t.Fatal("negative distance accepted")
	}
	asym := linalg.NewMatrix(2, 2)
	asym.Set(0, 1, 1)
	if _, err := KMedoids(asym, KMedoidsOptions{K: 1}); err == nil {
		t.Fatal("asymmetric accepted")
	}
}

func TestKMedoidsDeterministicWithSeed(t *testing.T) {
	aff, _ := blockAffinity([]int{12, 9, 7}, 0.85, 0.1)
	dist, _ := DistanceFromSimilarity(aff)
	a, err := KMedoids(dist, KMedoidsOptions{K: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMedoids(dist, KMedoidsOptions{K: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("same seed, different labels")
		}
	}
}

func TestKMedoidsInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(25)
		// Random symmetric non-negative distances with zero diagonal.
		dist := linalg.NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				d := rng.Float64() * 10
				dist.Set(i, j, d)
				dist.Set(j, i, d)
			}
		}
		k := 1 + rng.Intn(n)
		res, err := KMedoids(dist, KMedoidsOptions{K: k, Seed: seed, Restarts: 2})
		if err != nil {
			return false
		}
		if len(res.Labels) != n || len(res.Medoids) != k {
			return false
		}
		if res.Cost < 0 {
			return false
		}
		// Every point sits with its nearest medoid (ties allowed).
		for i := 0; i < n; i++ {
			got := dist.At(i, res.Medoids[res.Labels[i]])
			for _, m := range res.Medoids {
				if dist.At(i, m) < got-1e-9 {
					return false
				}
			}
		}
		// Medoids are distinct.
		seen := map[int]bool{}
		for _, m := range res.Medoids {
			if seen[m] {
				return false
			}
			seen[m] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestKMedoidsAgreesWithSpectralOnCleanBlocks(t *testing.T) {
	aff, truth := blockAffinity([]int{20, 15, 10, 5}, 0.9, 0.02)
	dist, _ := DistanceFromSimilarity(aff)
	km, err := KMedoids(dist, KMedoidsOptions{K: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := Spectral(aff, SpectralOptions{K: 4, KMeans: KMeansOptions{Seed: 2}})
	if err != nil {
		t.Fatal(err)
	}
	a1, _ := ARI(km.Labels, truth)
	a2, _ := ARI(sp.Labels, truth)
	if a1 < 0.99 || a2 < 0.99 {
		t.Fatalf("ARI kmedoids=%.3f spectral=%.3f", a1, a2)
	}
}
