// Package coloc analyzes job co-location from instance placements —
// the gap the paper's introduction calls out: "Existing works do not
// consider the structural patterns and resource needs of multiple jobs
// co-run on a node."
//
// Given batch_instance rows (which carry machine ids) and a job → group
// labeling from the clustering pipeline, the package measures which
// topological groups actually share machines, and whether group pairs
// co-occur more or less often than independent placement would predict.
package coloc

import (
	"fmt"
	"sort"

	"jobgraph/internal/trace"
)

// Overlap is the observed/expected co-occurrence of one group pair.
type Overlap struct {
	GroupA, GroupB string
	// Observed is the number of machines hosting instances of both
	// groups.
	Observed int
	// Expected is the count independent placement would produce given
	// each group's machine coverage.
	Expected float64
	// Lift is Observed/Expected (1 = independent, >1 = attraction,
	// <1 = avoidance). Zero expected yields lift 0.
	Lift float64
}

// Result is the full co-location analysis.
type Result struct {
	Machines int // machines that hosted at least one labeled instance
	// GroupMachines counts machines touched per group.
	GroupMachines map[string]int
	// Overlaps holds one entry per unordered group pair (A < B),
	// sorted by group names.
	Overlaps []Overlap
}

// Analyze computes group co-location from instance placements.
// jobGroup maps job names to group labels; instances of unlabeled jobs
// (not part of the analyzed sample) are ignored.
func Analyze(instances []trace.InstanceRecord, jobGroup map[string]string) (*Result, error) {
	if len(jobGroup) == 0 {
		return nil, fmt.Errorf("coloc: empty job→group labeling")
	}
	// machine -> set of groups present.
	perMachine := make(map[string]map[string]bool)
	for _, r := range instances {
		group, ok := jobGroup[r.JobName]
		if !ok {
			continue
		}
		if r.MachineID == "" {
			return nil, fmt.Errorf("coloc: instance %s has no machine", r.InstanceName)
		}
		set := perMachine[r.MachineID]
		if set == nil {
			set = make(map[string]bool)
			perMachine[r.MachineID] = set
		}
		set[group] = true
	}
	res := &Result{
		Machines:      len(perMachine),
		GroupMachines: make(map[string]int),
	}
	if res.Machines == 0 {
		return res, nil
	}

	pairCounts := make(map[[2]string]int)
	for _, set := range perMachine {
		groups := make([]string, 0, len(set))
		for g := range set {
			groups = append(groups, g)
			res.GroupMachines[g]++
		}
		sort.Strings(groups)
		for i := 0; i < len(groups); i++ {
			for j := i + 1; j < len(groups); j++ {
				pairCounts[[2]string{groups[i], groups[j]}]++
			}
		}
	}

	groups := make([]string, 0, len(res.GroupMachines))
	for g := range res.GroupMachines {
		groups = append(groups, g)
	}
	sort.Strings(groups)
	m := float64(res.Machines)
	for i := 0; i < len(groups); i++ {
		for j := i + 1; j < len(groups); j++ {
			a, b := groups[i], groups[j]
			obs := pairCounts[[2]string{a, b}]
			// Independence: P(both) = P(a)·P(b).
			exp := float64(res.GroupMachines[a]) * float64(res.GroupMachines[b]) / m
			lift := 0.0
			if exp > 0 {
				lift = float64(obs) / exp
			}
			res.Overlaps = append(res.Overlaps, Overlap{
				GroupA: a, GroupB: b,
				Observed: obs, Expected: exp, Lift: lift,
			})
		}
	}
	return res, nil
}
