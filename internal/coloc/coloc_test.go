package coloc

import (
	"math"
	"testing"

	"jobgraph/internal/trace"
)

func inst(job, machine string) trace.InstanceRecord {
	return trace.InstanceRecord{
		InstanceName: job + "@" + machine,
		TaskName:     "M1",
		JobName:      job,
		MachineID:    machine,
	}
}

func TestAnalyzeBasicOverlap(t *testing.T) {
	groups := map[string]string{"j1": "A", "j2": "A", "j3": "B"}
	instances := []trace.InstanceRecord{
		inst("j1", "m1"), inst("j3", "m1"), // A+B co-located on m1
		inst("j2", "m2"), // A alone on m2
		inst("j3", "m3"), // B alone on m3
	}
	res, err := Analyze(instances, groups)
	if err != nil {
		t.Fatal(err)
	}
	if res.Machines != 3 {
		t.Fatalf("machines = %d", res.Machines)
	}
	if res.GroupMachines["A"] != 2 || res.GroupMachines["B"] != 2 {
		t.Fatalf("group machines: %v", res.GroupMachines)
	}
	if len(res.Overlaps) != 1 {
		t.Fatalf("overlaps = %+v", res.Overlaps)
	}
	ov := res.Overlaps[0]
	if ov.GroupA != "A" || ov.GroupB != "B" || ov.Observed != 1 {
		t.Fatalf("overlap = %+v", ov)
	}
	// Expected = 2*2/3; lift = 1 / (4/3) = 0.75.
	if math.Abs(ov.Expected-4.0/3.0) > 1e-12 || math.Abs(ov.Lift-0.75) > 1e-12 {
		t.Fatalf("expected/lift = %g/%g", ov.Expected, ov.Lift)
	}
}

func TestAnalyzePerfectSegregation(t *testing.T) {
	groups := map[string]string{"j1": "A", "j2": "B"}
	instances := []trace.InstanceRecord{
		inst("j1", "m1"), inst("j1", "m2"),
		inst("j2", "m3"), inst("j2", "m4"),
	}
	res, err := Analyze(instances, groups)
	if err != nil {
		t.Fatal(err)
	}
	if res.Overlaps[0].Observed != 0 || res.Overlaps[0].Lift != 0 {
		t.Fatalf("segregated overlap = %+v", res.Overlaps[0])
	}
}

func TestAnalyzeFullMixing(t *testing.T) {
	groups := map[string]string{"j1": "A", "j2": "B"}
	instances := []trace.InstanceRecord{
		inst("j1", "m1"), inst("j2", "m1"),
		inst("j1", "m2"), inst("j2", "m2"),
	}
	res, err := Analyze(instances, groups)
	if err != nil {
		t.Fatal(err)
	}
	ov := res.Overlaps[0]
	if ov.Observed != 2 || math.Abs(ov.Lift-1) > 1e-12 {
		t.Fatalf("fully mixed overlap = %+v", ov)
	}
}

func TestAnalyzeIgnoresUnlabeledJobs(t *testing.T) {
	groups := map[string]string{"j1": "A"}
	instances := []trace.InstanceRecord{
		inst("j1", "m1"), inst("unknown", "m1"), inst("unknown", "m9"),
	}
	res, err := Analyze(instances, groups)
	if err != nil {
		t.Fatal(err)
	}
	if res.Machines != 1 || len(res.Overlaps) != 0 {
		t.Fatalf("result = %+v", res)
	}
}

func TestAnalyzeValidation(t *testing.T) {
	if _, err := Analyze(nil, nil); err == nil {
		t.Fatal("empty labeling accepted")
	}
	bad := []trace.InstanceRecord{{InstanceName: "i", JobName: "j1", TaskName: "M1"}}
	if _, err := Analyze(bad, map[string]string{"j1": "A"}); err == nil {
		t.Fatal("missing machine id accepted")
	}
}

func TestAnalyzeNoLabeledInstances(t *testing.T) {
	res, err := Analyze(nil, map[string]string{"j1": "A"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Machines != 0 || len(res.Overlaps) != 0 {
		t.Fatalf("result = %+v", res)
	}
}

func TestAnalyzeThreeGroupsAllPairs(t *testing.T) {
	groups := map[string]string{"j1": "A", "j2": "B", "j3": "C"}
	instances := []trace.InstanceRecord{
		inst("j1", "m1"), inst("j2", "m1"), inst("j3", "m1"),
	}
	res, err := Analyze(instances, groups)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Overlaps) != 3 { // AB, AC, BC
		t.Fatalf("overlaps = %d", len(res.Overlaps))
	}
	// Sorted pair order.
	if res.Overlaps[0].GroupA != "A" || res.Overlaps[0].GroupB != "B" ||
		res.Overlaps[2].GroupA != "B" || res.Overlaps[2].GroupB != "C" {
		t.Fatalf("pair order: %+v", res.Overlaps)
	}
}
