package tracegen

import (
	"fmt"
	"math/rand"

	"jobgraph/internal/taskname"
)

// blueprint is the structural plan of one generated DAG job before it is
// serialized into trace task names: tasks are numbered 1..n in
// topological order, deps[i] lists the parents of task i+1, and types
// assigns each task its framework role.
type blueprint struct {
	n     int
	deps  [][]int
	types []taskname.Type
}

// levelPlan builds a blueprint from a level-width profile: widths[l]
// tasks at level l, every task wired to parents drawn from level l-1.
// Wiring guarantees (a) every non-source has ≥1 parent, (b) every
// non-sink level task has ≥1 child, keeping the profile exact.
func levelPlan(widths []int, rng *rand.Rand) *blueprint {
	n := 0
	for _, w := range widths {
		n += w
	}
	bp := &blueprint{n: n, deps: make([][]int, n), types: make([]taskname.Type, n)}

	// Task ids per level, assigned in order.
	levels := make([][]int, len(widths))
	id := 1
	for l, w := range widths {
		for i := 0; i < w; i++ {
			levels[l] = append(levels[l], id)
			id++
		}
	}

	for l := 1; l < len(levels); l++ {
		prev := levels[l-1]
		cur := levels[l]
		// Every current task picks 1..min(3,len(prev)) parents.
		covered := make(map[int]bool, len(prev))
		for _, t := range cur {
			k := 1 + rng.Intn(minInt(3, len(prev)))
			seen := make(map[int]bool, k)
			for len(seen) < k {
				p := prev[rng.Intn(len(prev))]
				if !seen[p] {
					seen[p] = true
					covered[p] = true
					bp.deps[t-1] = append(bp.deps[t-1], p)
				}
			}
		}
		// Ensure every previous-level task has at least one child so the
		// width profile (longest-path levels) stays exactly as planned.
		for _, p := range prev {
			if !covered[p] {
				t := cur[rng.Intn(len(cur))]
				bp.deps[t-1] = append(bp.deps[t-1], p)
			}
		}
	}

	bp.assignTypes(levels)
	return bp
}

// assignTypes labels tasks by level following the programming-model
// conventions the paper observes (§V-C): first level Map, converging
// multi-parent middle tasks Join, everything downstream Reduce.
func (bp *blueprint) assignTypes(levels [][]int) {
	for l, lvl := range levels {
		for _, t := range lvl {
			switch {
			case l == 0:
				bp.types[t-1] = taskname.TypeMap
			case len(bp.deps[t-1]) >= 2 && l < len(levels)-1:
				bp.types[t-1] = taskname.TypeJoin
			default:
				bp.types[t-1] = taskname.TypeReduce
			}
		}
	}
}

// chainPlan builds a straight chain of n tasks. Following the paper's
// observation, chains of four or more tasks deploy more Reduce than Map
// tasks (single Map head), while tiny chains are Map-heavy.
func chainPlan(n int) *blueprint {
	bp := &blueprint{n: n, deps: make([][]int, n), types: make([]taskname.Type, n)}
	for i := 1; i < n; i++ {
		bp.deps[i] = []int{i}
	}
	for i := 0; i < n; i++ {
		bp.types[i] = taskname.TypeReduce
	}
	bp.types[0] = taskname.TypeMap
	if n == 3 {
		bp.types[1] = taskname.TypeMap
	}
	return bp
}

// shapeWidths produces a level-width profile of total size n for the
// given shape. Callers must pass a feasible (shape, n) pair; see
// feasible().
func shapeWidths(s shapeKind, n int, rng *rand.Rand) []int {
	switch s {
	case shapeChain:
		w := make([]int, n)
		for i := range w {
			w[i] = 1
		}
		return w
	case shapeInvTriangle:
		// Non-increasing, ending at 1, first level > 1, optionally a
		// width-1 tail (the paper's "convergence with longer tails").
		tail := 0
		if n >= 6 && rng.Float64() < 0.4 {
			tail = 1 + rng.Intn(2)
		}
		body := n - tail
		// Split body into 2–3 non-increasing levels, last = 1. Bodies
		// under 4 can only form [k,1] without degenerating to a chain.
		if body < 4 || rng.Float64() < 0.6 {
			ws := []int{body - 1, 1}
			return append(ws, ones(tail)...)
		}
		mid := 1 + rng.Intn(maxInt(1, (body-2)/2))
		first := body - 1 - mid
		if first < mid { // keep non-increasing
			first, mid = mid, first
		}
		if mid < 1 {
			mid = 1
			first = body - 2
		}
		ws := []int{first, mid, 1}
		return append(ws, ones(tail)...)
	case shapeDiamond:
		// 1, widths…, 1 with a wider middle.
		middle := n - 2
		if middle <= 2 || rng.Float64() < 0.5 {
			return []int{1, middle, 1}
		}
		a := 1 + rng.Intn(middle-1)
		return []int{1, a, middle - a, 1}
	case shapeHourglass:
		// wide, 1, wide.
		left := (n - 1) / 2
		right := n - 1 - left
		return []int{left, 1, right}
	case shapeTrapezium:
		// Non-decreasing, diverging to more sinks than sources.
		if n < 5 || rng.Float64() < 0.6 {
			return []int{1, n - 1}
		}
		mid := 1 + rng.Intn((n-2)/2)
		last := n - 1 - mid
		if last < mid {
			mid, last = last, mid
		}
		if mid < 1 {
			mid = 1
			last = n - 2
		}
		return []int{1, mid, last}
	case shapeHybrid:
		// Inverted triangle head followed by a serial tail — the
		// paper's explicit "combination style" example. The tail is
		// bounded so critical paths stay in the observed 2–8 range.
		tail := minInt(3, n-3)
		head := n - 1 - tail
		ws := []int{head, 1}
		return append(ws, ones(tail)...)
	default:
		panic(fmt.Sprintf("tracegen: unknown shape %d", s))
	}
}

func ones(k int) []int {
	w := make([]int, k)
	for i := range w {
		w[i] = 1
	}
	return w
}

// shapeKind enumerates generated topology families. It deliberately
// mirrors pattern.Shape but stays a separate type: the classifier is
// what's under test, and the generator must not depend on it.
type shapeKind int

const (
	shapeChain shapeKind = iota
	shapeInvTriangle
	shapeDiamond
	shapeHourglass
	shapeTrapezium
	shapeHybrid
	numShapes
)

func (s shapeKind) String() string {
	switch s {
	case shapeChain:
		return "chain"
	case shapeInvTriangle:
		return "inverted-triangle"
	case shapeDiamond:
		return "diamond"
	case shapeHourglass:
		return "hourglass"
	case shapeTrapezium:
		return "trapezium"
	case shapeHybrid:
		return "hybrid"
	default:
		return "unknown"
	}
}

// maxChainSize bounds straight chains: the paper's sample has critical
// paths of 2–8 (§V-A), and chains are its small jobs; unbounded chains
// would put 31-deep critical paths in the trace that the real workload
// never shows.
const maxChainSize = 8

// feasible reports whether a shape can be realized with n tasks.
func feasible(s shapeKind, n int) bool {
	switch s {
	case shapeChain:
		return n >= 2 && n <= maxChainSize
	case shapeInvTriangle:
		return n >= 3
	case shapeDiamond:
		return n >= 4
	case shapeHourglass:
		return n >= 5
	case shapeTrapezium:
		return n >= 3
	case shapeHybrid:
		return n >= 4
	default:
		return false
	}
}

// plan generates the blueprint for one DAG job of the given shape/size.
func plan(s shapeKind, n int, rng *rand.Rand) *blueprint {
	if s == shapeChain {
		return chainPlan(n)
	}
	return levelPlan(shapeWidths(s, n, rng), rng)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
