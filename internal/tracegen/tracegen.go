// Package tracegen synthesizes Alibaba-v2018-style batch workload
// traces. It stands in for the proprietary production trace the paper
// analyzes: every downstream stage consumes only the two-table CSV
// schema and the task-name dependency encoding, both of which this
// generator reproduces exactly, with the paper's published aggregate
// statistics as generation targets:
//
//   - ~50% of batch jobs carry DAG dependencies (§II-B),
//   - among DAG jobs: 58% straight chains, 37% inverted triangles,
//     diamonds and composite shapes in the tail (§V-B),
//   - job sizes 2–31 tasks with 17 distinct size groups whose counts
//     decay as size grows (§IV-B, §V-A),
//   - diurnal submission pattern over an 8-day window (§II-B),
//   - a mix of Terminated / Running / Failed outcomes so the sampling
//     stage has integrity filtering to do (§IV-B).
package tracegen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"jobgraph/internal/taskname"
	"jobgraph/internal/trace"
)

// Config controls generation. The zero value is not valid; use
// DefaultConfig and override.
type Config struct {
	NumJobs int
	Seed    int64

	// DAGFraction is the share of jobs with dependency structure; the
	// remainder are flat jobs with opaque task names.
	DAGFraction float64

	// ShapeWeights is the mixture over generated DAG topologies,
	// indexed by shapeKind String() names: "chain", "inverted-triangle",
	// "diamond", "hourglass", "trapezium", "hybrid". Weights are
	// normalized internally.
	ShapeWeights map[string]float64

	// Sizes is the set of distinct DAG job sizes; SizeDecay ∈ (0,1] is
	// the geometric decay of the weight from one size to the next
	// (smaller = steeper decay toward small jobs). SizeFloor ≥ 0 is a
	// uniform weight added to every size so the large-job tail never
	// vanishes — the real trace keeps a thin but persistent population
	// of big jobs (the paper's sample covers sizes up to 31).
	Sizes     []int
	SizeDecay float64
	SizeFloor float64

	// TraceDuration is the covered window in seconds (8 days for the
	// real trace). Arrivals follow a diurnal sinusoid with relative
	// amplitude DiurnalAmplitude in [0,1).
	TraceDuration    int64
	DiurnalAmplitude float64

	// Outcome mix; must sum to <= 1, remainder becomes Failed.
	TerminatedFrac float64
	RunningFrac    float64
}

// DefaultConfig returns the paper-calibrated configuration.
func DefaultConfig(numJobs int, seed int64) Config {
	return Config{
		NumJobs:     numJobs,
		Seed:        seed,
		DAGFraction: 0.5,
		ShapeWeights: map[string]float64{
			"chain":             0.58,
			"inverted-triangle": 0.37,
			"diamond":           0.02,
			"hourglass":         0.01,
			"trapezium":         0.01,
			"hybrid":            0.01,
		},
		Sizes:            []int{2, 3, 4, 5, 6, 7, 8, 9, 10, 12, 14, 16, 18, 20, 24, 28, 31},
		SizeDecay:        0.45,
		SizeFloor:        0.012,
		TraceDuration:    8 * 24 * 3600,
		DiurnalAmplitude: 0.6,
		TerminatedFrac:   0.88,
		RunningFrac:      0.05,
	}
}

func (c Config) validate() error {
	if c.NumJobs < 0 {
		return fmt.Errorf("tracegen: negative NumJobs %d", c.NumJobs)
	}
	if c.DAGFraction < 0 || c.DAGFraction > 1 {
		return fmt.Errorf("tracegen: DAGFraction %g outside [0,1]", c.DAGFraction)
	}
	if len(c.Sizes) == 0 {
		return fmt.Errorf("tracegen: empty size set")
	}
	for _, s := range c.Sizes {
		if s < 2 {
			return fmt.Errorf("tracegen: DAG size %d < 2", s)
		}
	}
	if c.SizeDecay <= 0 || c.SizeDecay > 1 {
		return fmt.Errorf("tracegen: SizeDecay %g outside (0,1]", c.SizeDecay)
	}
	if c.SizeFloor < 0 {
		return fmt.Errorf("tracegen: SizeFloor %g < 0", c.SizeFloor)
	}
	if c.TraceDuration <= 0 {
		return fmt.Errorf("tracegen: TraceDuration %d <= 0", c.TraceDuration)
	}
	if c.DiurnalAmplitude < 0 || c.DiurnalAmplitude >= 1 {
		return fmt.Errorf("tracegen: DiurnalAmplitude %g outside [0,1)", c.DiurnalAmplitude)
	}
	if c.TerminatedFrac < 0 || c.RunningFrac < 0 || c.TerminatedFrac+c.RunningFrac > 1 {
		return fmt.Errorf("tracegen: outcome fractions invalid")
	}
	if len(c.ShapeWeights) == 0 {
		return fmt.Errorf("tracegen: empty shape mixture")
	}
	total := 0.0
	for name, w := range c.ShapeWeights {
		if w < 0 {
			return fmt.Errorf("tracegen: negative weight for shape %q", name)
		}
		if !validShapeName(name) {
			return fmt.Errorf("tracegen: unknown shape %q", name)
		}
		total += w
	}
	if total <= 0 {
		return fmt.Errorf("tracegen: shape mixture sums to zero")
	}
	return nil
}

func validShapeName(name string) bool {
	for s := shapeKind(0); s < numShapes; s++ {
		if s.String() == name {
			return true
		}
	}
	return false
}

// Generate produces the batch_task table for a synthetic trace. Records
// are emitted job by job; task rows within a job are ordered by task id.
func Generate(cfg Config) ([]trace.TaskRecord, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	shapeNames, shapeCDF := mixtureCDF(cfg.ShapeWeights)
	// Shapes are sampled first so the mixture holds exactly; each shape
	// then draws its size from the geometrically-decaying weights
	// restricted to its feasible sizes (diamonds need ≥4 tasks, etc.).
	// This mirrors the real trace, where the smallest jobs are chains.
	sizeCDFs, err := perShapeSizeCDFs(cfg)
	if err != nil {
		return nil, err
	}

	records := make([]trace.TaskRecord, 0, cfg.NumJobs*3)
	for j := 0; j < cfg.NumJobs; j++ {
		jobName := fmt.Sprintf("j_%07d", j+1)
		arrival := diurnalArrival(rng, cfg.TraceDuration, cfg.DiurnalAmplitude)
		status := sampleStatus(rng, cfg)
		if rng.Float64() < cfg.DAGFraction {
			shape := shapeByName(shapeNames[sampleCDF(rng, shapeCDF)])
			sc := sizeCDFs[shape]
			size := sc.sizes[sampleCDF(rng, sc.cdf)]
			bp := plan(shape, size, rng)
			records = append(records, emitDAGJob(rng, jobName, bp, arrival, status, cfg)...)
		} else {
			records = append(records, emitFlatJob(rng, jobName, arrival, status)...)
		}
	}
	return records, nil
}

// sizeCDF pairs a feasible size list with its cumulative weights.
type sizeCDF struct {
	sizes []int
	cdf   []float64
}

// perShapeSizeCDFs restricts the configured size set to each shape's
// feasible sizes, keeping the geometric rank weights of the full set.
func perShapeSizeCDFs(cfg Config) (map[shapeKind]sizeCDF, error) {
	out := make(map[shapeKind]sizeCDF, int(numShapes))
	for s := shapeKind(0); s < numShapes; s++ {
		var sizes []int
		var weights []float64
		w := 1.0
		for _, size := range cfg.Sizes {
			if feasible(s, size) {
				sizes = append(sizes, size)
				weights = append(weights, w+cfg.SizeFloor)
			}
			w *= cfg.SizeDecay
		}
		if _, used := cfg.ShapeWeights[s.String()]; used && len(sizes) == 0 {
			return nil, fmt.Errorf("tracegen: no feasible sizes for shape %s", s)
		}
		if len(sizes) == 0 {
			continue
		}
		total := 0.0
		for _, v := range weights {
			total += v
		}
		cdf := make([]float64, len(weights))
		acc := 0.0
		for i, v := range weights {
			acc += v / total
			cdf[i] = acc
		}
		cdf[len(cdf)-1] = 1
		out[s] = sizeCDF{sizes: sizes, cdf: cdf}
	}
	return out, nil
}

// GenerateJobs is Generate followed by per-job grouping.
func GenerateJobs(cfg Config) ([]trace.Job, error) {
	recs, err := Generate(cfg)
	if err != nil {
		return nil, err
	}
	return trace.GroupTasks(recs), nil
}

func shapeByName(name string) shapeKind {
	for s := shapeKind(0); s < numShapes; s++ {
		if s.String() == name {
			return s
		}
	}
	return shapeChain
}

// redundantNameProb is the chance that a multi-input aggregate task is
// named with its full ancestor closure instead of its direct parents —
// the trace's over-specified style the paper's own example shows
// (R5_4_3_2_1 lists all four upstream tasks although 1→2 and 3→4 make
// two of those edges transitively implied).
const redundantNameProb = 0.5

// emitDAGJob serializes a blueprint into trace task rows with
// dependency-encoded names and plausible runtime attributes.
func emitDAGJob(rng *rand.Rand, jobName string, bp *blueprint, arrival int64, jobStatus trace.Status, cfg Config) []trace.TaskRecord {
	ancestors := ancestorClosure(bp)
	// Per-task durations: log-normal-ish, Map stages longer tails.
	out := make([]trace.TaskRecord, 0, bp.n)
	finish := make([]int64, bp.n+1) // finish[i] = end time of task i
	for i := 0; i < bp.n; i++ {
		id := i + 1
		nameDeps := bp.deps[i]
		if len(nameDeps) >= 2 && len(ancestors[i]) > len(nameDeps) && rng.Float64() < redundantNameProb {
			nameDeps = ancestors[i]
		}
		start := arrival
		for _, d := range bp.deps[i] {
			if finish[d] > start {
				start = finish[d]
			}
		}
		dur := taskDuration(rng, bp.types[i])
		end := start + dur
		finish[id] = end

		status := jobStatus
		if jobStatus == trace.StatusRunning && i == bp.n-1 {
			// Running jobs have an unfinished last task.
			end = 0
		}
		instances := instanceCount(rng, bp.types[i])
		out = append(out, trace.TaskRecord{
			TaskName:    formatName(bp.types[i], id, nameDeps),
			InstanceNum: instances,
			JobName:     jobName,
			TaskType:    "1",
			Status:      status,
			StartTime:   start,
			EndTime:     end,
			PlanCPU:     float64(50 * (1 + rng.Intn(4))), // 0.5–2 cores
			PlanMem:     math.Round(rng.Float64()*100) / 100,
		})
	}
	return out
}

// emitFlatJob produces 1–3 tasks with non-DAG names.
func emitFlatJob(rng *rand.Rand, jobName string, arrival int64, status trace.Status) []trace.TaskRecord {
	n := 1 + rng.Intn(3)
	out := make([]trace.TaskRecord, 0, n)
	for i := 0; i < n; i++ {
		dur := taskDuration(rng, taskname.TypeOther)
		end := arrival + dur
		if status == trace.StatusRunning {
			end = 0
		}
		out = append(out, trace.TaskRecord{
			TaskName:    fmt.Sprintf("task_%s", randToken(rng, 10)),
			InstanceNum: 1 + rng.Intn(16),
			JobName:     jobName,
			TaskType:    "2",
			Status:      status,
			StartTime:   arrival,
			EndTime:     end,
			PlanCPU:     float64(50 * (1 + rng.Intn(2))),
			PlanMem:     math.Round(rng.Float64()*100) / 100,
		})
	}
	return out
}

// ancestorClosure computes, per task index, the full ancestor id list
// in descending order (the trace's R5_4_3_2_1 style). Task ids equal
// index+1 and parents always precede children in the blueprint.
func ancestorClosure(bp *blueprint) [][]int {
	anc := make([]map[int]bool, bp.n)
	for i := 0; i < bp.n; i++ {
		set := make(map[int]bool)
		for _, p := range bp.deps[i] {
			set[p] = true
			for a := range anc[p-1] {
				set[a] = true
			}
		}
		anc[i] = set
	}
	out := make([][]int, bp.n)
	for i, set := range anc {
		ids := make([]int, 0, len(set))
		for a := range set {
			ids = append(ids, a)
		}
		sort.Sort(sort.Reverse(sort.IntSlice(ids)))
		out[i] = ids
	}
	return out
}

// formatName renders the dependency-encoded task name.
func formatName(t taskname.Type, id int, deps []int) string {
	var b strings.Builder
	b.WriteString(t.String())
	fmt.Fprintf(&b, "%d", id)
	for _, d := range deps {
		fmt.Fprintf(&b, "_%d", d)
	}
	return b.String()
}

// taskDuration samples a task run time in seconds: log-normal body with
// type-dependent scale, clamped to [10s, 4h].
func taskDuration(rng *rand.Rand, t taskname.Type) int64 {
	// Flat (TypeOther) tasks run longer on average: the non-DAG half of
	// the workload is fewer, chunkier tasks, calibrated so DAG jobs end
	// up consuming 70–80% of batch resources as §II-B reports.
	scale := 150.0
	switch t {
	case taskname.TypeMap:
		scale = 90
	case taskname.TypeJoin:
		scale = 120
	case taskname.TypeReduce:
		scale = 70
	}
	d := scale * math.Exp(rng.NormFloat64()*0.8)
	if d < 10 {
		d = 10
	}
	if d > 4*3600 {
		d = 4 * 3600
	}
	return int64(d)
}

// instanceCount samples instance parallelism: Map stages fan out wide,
// Reduce stages stay narrow — mirroring the trace's instance skew.
func instanceCount(rng *rand.Rand, t taskname.Type) int {
	switch t {
	case taskname.TypeMap:
		return 1 + rng.Intn(50)
	case taskname.TypeJoin:
		return 1 + rng.Intn(20)
	default:
		return 1 + rng.Intn(10)
	}
}

// sampleStatus draws the job outcome.
func sampleStatus(rng *rand.Rand, cfg Config) trace.Status {
	u := rng.Float64()
	switch {
	case u < cfg.TerminatedFrac:
		return trace.StatusTerminated
	case u < cfg.TerminatedFrac+cfg.RunningFrac:
		return trace.StatusRunning
	default:
		return trace.StatusFailed
	}
}

// diurnalArrival samples a submission time whose intensity follows
// 1 + A·sin(2πt/day) via rejection sampling.
func diurnalArrival(rng *rand.Rand, window int64, amplitude float64) int64 {
	for {
		t := rng.Int63n(window)
		phase := 2 * math.Pi * float64(t%86400) / 86400
		accept := (1 + amplitude*math.Sin(phase)) / (1 + amplitude)
		if rng.Float64() < accept {
			return t
		}
	}
}

// mixtureCDF normalizes a name→weight map into parallel name/CDF slices
// with deterministic (sorted) order.
func mixtureCDF(weights map[string]float64) ([]string, []float64) {
	names := make([]string, 0, len(weights))
	for s := shapeKind(0); s < numShapes; s++ {
		if _, ok := weights[s.String()]; ok {
			names = append(names, s.String())
		}
	}
	total := 0.0
	for _, n := range names {
		total += weights[n]
	}
	cdf := make([]float64, len(names))
	acc := 0.0
	for i, n := range names {
		acc += weights[n] / total
		cdf[i] = acc
	}
	if len(cdf) > 0 {
		cdf[len(cdf)-1] = 1
	}
	return names, cdf
}

// sampleCDF returns the index of the first CDF entry >= u.
func sampleCDF(rng *rand.Rand, cdf []float64) int {
	u := rng.Float64()
	for i, c := range cdf {
		if u <= c {
			return i
		}
	}
	return len(cdf) - 1
}

const tokenAlphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"

func randToken(rng *rand.Rand, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = tokenAlphabet[rng.Intn(len(tokenAlphabet))]
	}
	return string(b)
}
