package tracegen

import (
	"fmt"
	"math"
	"math/rand"

	"jobgraph/internal/trace"
)

// InstanceConfig controls batch_instance synthesis.
type InstanceConfig struct {
	Seed int64
	// Machines is the size of the simulated machine pool (the real
	// trace covers ~4000 nodes).
	Machines int
	// FailureRate is the probability that an individual instance of a
	// terminated task failed and was retried (the trace keeps failed
	// attempts as extra rows).
	FailureRate float64
}

// DefaultInstanceConfig mirrors the trace's scale.
func DefaultInstanceConfig(seed int64) InstanceConfig {
	return InstanceConfig{Seed: seed, Machines: 4000, FailureRate: 0.02}
}

func (c InstanceConfig) validate() error {
	if c.Machines <= 0 {
		return fmt.Errorf("tracegen: Machines %d <= 0", c.Machines)
	}
	if c.FailureRate < 0 || c.FailureRate >= 1 {
		return fmt.Errorf("tracegen: FailureRate %g outside [0,1)", c.FailureRate)
	}
	return nil
}

// GenerateInstances expands task rows into per-instance rows: each task
// spawns InstanceNum instances spread across machines, jittered within
// the task's execution window, with actual resource usage below the
// plan.
func GenerateInstances(tasks []trace.TaskRecord, cfg InstanceConfig) ([]trace.InstanceRecord, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var out []trace.InstanceRecord
	for _, t := range tasks {
		n := t.InstanceNum
		if n <= 0 {
			continue
		}
		for i := 1; i <= n; i++ {
			rec := trace.InstanceRecord{
				InstanceName: fmt.Sprintf("%s_%s_%d", t.JobName, t.TaskName, i),
				TaskName:     t.TaskName,
				JobName:      t.JobName,
				TaskType:     t.TaskType,
				Status:       t.Status,
				MachineID:    fmt.Sprintf("m_%d", 1+rng.Intn(cfg.Machines)),
				SeqNo:        i,
				TotalSeqNo:   n,
			}
			if t.EndTime > t.StartTime {
				// Jitter the instance inside the task window.
				window := t.EndTime - t.StartTime
				off := int64(0)
				if window > 1 {
					off = rng.Int63n(window / 2)
				}
				rec.StartTime = t.StartTime + off
				rec.EndTime = t.EndTime - rng.Int63n(maxI64(1, window/4))
				if rec.EndTime <= rec.StartTime {
					rec.EndTime = rec.StartTime + 1
				}
			} else {
				rec.StartTime = t.StartTime
				rec.EndTime = 0
			}
			if t.Status == trace.StatusTerminated && rng.Float64() < cfg.FailureRate {
				rec.Status = trace.StatusFailed
			}
			// Actual usage: a fraction of the plan with noise.
			rec.CPUAvg = round2(t.PlanCPU * (0.3 + 0.5*rng.Float64()))
			rec.CPUMax = round2(math.Min(t.PlanCPU, rec.CPUAvg*(1.1+0.5*rng.Float64())))
			rec.MemAvg = round2(t.PlanMem * (0.3 + 0.5*rng.Float64()))
			rec.MemMax = round2(math.Min(t.PlanMem, rec.MemAvg*(1.1+0.5*rng.Float64())))
			out = append(out, rec)
		}
	}
	return out, nil
}

func round2(f float64) float64 { return math.Round(f*100) / 100 }

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
