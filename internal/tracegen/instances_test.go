package tracegen

import (
	"bytes"
	"testing"

	"jobgraph/internal/trace"
)

func TestGenerateInstancesExpandsCounts(t *testing.T) {
	tasks, err := Generate(DefaultConfig(50, 1))
	if err != nil {
		t.Fatal(err)
	}
	inst, err := GenerateInstances(tasks, DefaultInstanceConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, tk := range tasks {
		want += tk.InstanceNum
	}
	if len(inst) != want {
		t.Fatalf("instances = %d, want %d", len(inst), want)
	}
}

func TestGenerateInstancesValidRecords(t *testing.T) {
	tasks, err := Generate(DefaultConfig(100, 2))
	if err != nil {
		t.Fatal(err)
	}
	inst, err := GenerateInstances(tasks, DefaultInstanceConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	byTask := make(map[string]trace.TaskRecord)
	for _, tk := range tasks {
		byTask[tk.JobName+"/"+tk.TaskName] = tk
	}
	for _, r := range inst {
		if err := r.Validate(); err != nil {
			t.Fatalf("invalid instance: %v", err)
		}
		parent, ok := byTask[r.JobName+"/"+r.TaskName]
		if !ok {
			t.Fatalf("instance %s has no parent task", r.InstanceName)
		}
		if parent.EndTime > parent.StartTime {
			if r.StartTime < parent.StartTime || (r.EndTime > parent.EndTime) {
				t.Fatalf("instance window [%d,%d] outside task [%d,%d]",
					r.StartTime, r.EndTime, parent.StartTime, parent.EndTime)
			}
		}
		if r.CPUMax > parent.PlanCPU+1e-9 {
			t.Fatalf("instance cpu_max %g exceeds plan %g", r.CPUMax, parent.PlanCPU)
		}
		if r.SeqNo < 1 || r.SeqNo > r.TotalSeqNo {
			t.Fatalf("bad seq %d/%d", r.SeqNo, r.TotalSeqNo)
		}
	}
}

func TestGenerateInstancesConfigValidation(t *testing.T) {
	tasks, _ := Generate(DefaultConfig(5, 3))
	if _, err := GenerateInstances(tasks, InstanceConfig{Machines: 0}); err == nil {
		t.Fatal("zero machines accepted")
	}
	if _, err := GenerateInstances(tasks, InstanceConfig{Machines: 10, FailureRate: 1}); err == nil {
		t.Fatal("failure rate 1 accepted")
	}
}

func TestGenerateInstancesRoundTripCSV(t *testing.T) {
	tasks, err := Generate(DefaultConfig(20, 4))
	if err != nil {
		t.Fatal(err)
	}
	inst, err := GenerateInstances(tasks, DefaultInstanceConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	var cnt int
	var buf bytes.Buffer
	if err := trace.WriteInstances(&buf, inst); err != nil {
		t.Fatal(err)
	}
	if err := trace.ReadInstances(&buf, func(trace.InstanceRecord) error {
		cnt++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if cnt != len(inst) {
		t.Fatalf("round trip count %d != %d", cnt, len(inst))
	}
}
