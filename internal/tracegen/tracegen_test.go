package tracegen

import (
	"math"
	"reflect"
	"testing"

	"jobgraph/internal/dag"
	"jobgraph/internal/pattern"
	"jobgraph/internal/trace"
)

func defaultGen(t testing.TB, n int, seed int64) []trace.Job {
	t.Helper()
	jobs, err := GenerateJobs(DefaultConfig(n, seed))
	if err != nil {
		t.Fatal(err)
	}
	return jobs
}

// buildDAG converts a generated job into a graph, failing the test on
// any structural error — generated traces must always build.
func buildDAG(t testing.TB, j trace.Job) *dag.Graph {
	t.Helper()
	specs := make([]dag.TaskSpec, 0, len(j.Tasks))
	for _, task := range j.Tasks {
		specs = append(specs, dag.TaskSpec{
			Name:      task.TaskName,
			Duration:  task.Duration(),
			Instances: task.InstanceNum,
			PlanCPU:   task.PlanCPU,
			PlanMem:   task.PlanMem,
		})
	}
	res, err := dag.FromTasks(j.Name, specs, dag.BuildOptions{})
	if err != nil {
		t.Fatalf("job %s does not build: %v", j.Name, err)
	}
	return res.Graph
}

func TestGenerateJobCount(t *testing.T) {
	jobs := defaultGen(t, 500, 1)
	if len(jobs) != 500 {
		t.Fatalf("jobs = %d, want 500", len(jobs))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(DefaultConfig(200, 7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(DefaultConfig(200, 7))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different traces")
	}
	c, err := Generate(DefaultConfig(200, 8))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestGeneratedJobsAllBuildAsDAGs(t *testing.T) {
	for _, j := range defaultGen(t, 1000, 2) {
		g := buildDAG(t, j)
		if err := g.Validate(); err != nil {
			t.Fatalf("job %s: %v", j.Name, err)
		}
	}
}

func TestGeneratedDAGFraction(t *testing.T) {
	jobs := defaultGen(t, 3000, 3)
	dagJobs := 0
	for _, j := range jobs {
		if buildDAG(t, j).Size() > 0 {
			dagJobs++
		}
	}
	frac := float64(dagJobs) / float64(len(jobs))
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("DAG fraction = %.3f, want ~0.50", frac)
	}
}

func TestGeneratedShapeMixtureMatchesPaper(t *testing.T) {
	jobs := defaultGen(t, 4000, 4)
	census := pattern.NewCensus()
	for _, j := range jobs {
		g := buildDAG(t, j)
		if g.Size() < 2 {
			continue // flat jobs
		}
		if err := census.Add(g); err != nil {
			t.Fatal(err)
		}
	}
	chain := census.Fraction(pattern.Chain)
	tri := census.Fraction(pattern.InvertedTriangle)
	if math.Abs(chain-0.58) > 0.05 {
		t.Fatalf("chain share = %.3f, want ~0.58", chain)
	}
	// Generated hybrids classify as convergent too, so allow the band.
	if math.Abs(tri-0.38) > 0.05 {
		t.Fatalf("inverted-triangle share = %.3f, want ~0.37", tri)
	}
	if chain <= tri {
		t.Fatalf("paper ordering violated: chain %.3f <= triangle %.3f", chain, tri)
	}
}

func TestGeneratedSizesInRangeAndDecaying(t *testing.T) {
	cfg := DefaultConfig(5000, 5)
	jobs, err := GenerateJobs(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[int]int)
	for _, j := range jobs {
		g := buildDAG(t, j)
		if g.Size() >= 2 {
			counts[g.Size()]++
		}
	}
	allowed := make(map[int]bool)
	for _, s := range cfg.Sizes {
		allowed[s] = true
	}
	for size := range counts {
		if !allowed[size] {
			t.Fatalf("generated size %d not in configured set", size)
		}
	}
	// Counts must broadly decay: size 2 most frequent, size 31 rare.
	if counts[2] <= counts[31] {
		t.Fatalf("size decay violated: n(2)=%d n(31)=%d", counts[2], counts[31])
	}
	if counts[2] <= counts[10] {
		t.Fatalf("size decay violated: n(2)=%d n(10)=%d", counts[2], counts[10])
	}
}

func TestGeneratedStatusMix(t *testing.T) {
	jobs := defaultGen(t, 3000, 6)
	byStatus := make(map[trace.Status]int)
	for _, j := range jobs {
		byStatus[j.Tasks[0].Status]++
	}
	term := float64(byStatus[trace.StatusTerminated]) / float64(len(jobs))
	if term < 0.83 || term > 0.93 {
		t.Fatalf("terminated fraction = %.3f, want ~0.88", term)
	}
	if byStatus[trace.StatusRunning] == 0 || byStatus[trace.StatusFailed] == 0 {
		t.Fatalf("missing running/failed jobs: %v", byStatus)
	}
}

func TestGeneratedTimesWithinWindow(t *testing.T) {
	cfg := DefaultConfig(1000, 7)
	recs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.StartTime < 0 {
			t.Fatalf("negative start: %+v", r)
		}
		if r.Status == trace.StatusTerminated && r.EndTime <= r.StartTime {
			t.Fatalf("terminated task without interval: %+v", r)
		}
	}
}

func TestGeneratedDiurnalPattern(t *testing.T) {
	cfg := DefaultConfig(20000, 8)
	recs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Arrival density in the sinusoid's peak half-day should exceed the
	// trough half-day.
	peak, trough := 0, 0
	seen := make(map[string]bool)
	for _, r := range recs {
		if seen[r.JobName] {
			continue
		}
		seen[r.JobName] = true
		phase := float64(r.StartTime%86400) / 86400
		if phase < 0.5 {
			peak++ // sin positive on (0, 0.5)
		} else {
			trough++
		}
	}
	if peak <= trough {
		t.Fatalf("diurnal pattern absent: peak=%d trough=%d", peak, trough)
	}
	ratio := float64(peak) / float64(trough)
	if ratio < 1.5 {
		t.Fatalf("diurnal contrast too weak: %.2f", ratio)
	}
}

func TestGenerateConfigValidation(t *testing.T) {
	bads := []func(*Config){
		func(c *Config) { c.NumJobs = -1 },
		func(c *Config) { c.DAGFraction = 1.5 },
		func(c *Config) { c.Sizes = nil },
		func(c *Config) { c.Sizes = []int{1} },
		func(c *Config) { c.SizeDecay = 0 },
		func(c *Config) { c.SizeDecay = 1.5 },
		func(c *Config) { c.TraceDuration = 0 },
		func(c *Config) { c.DiurnalAmplitude = 1 },
		func(c *Config) { c.TerminatedFrac = 0.9; c.RunningFrac = 0.2 },
		func(c *Config) { c.ShapeWeights = nil },
		func(c *Config) { c.ShapeWeights = map[string]float64{"nonsense": 1} },
		func(c *Config) { c.ShapeWeights = map[string]float64{"chain": -1} },
		func(c *Config) { c.ShapeWeights = map[string]float64{"chain": 0} },
	}
	for i, mutate := range bads {
		cfg := DefaultConfig(10, 1)
		mutate(&cfg)
		if _, err := Generate(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestGenerateZeroJobs(t *testing.T) {
	recs, err := Generate(DefaultConfig(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("records = %d, want 0", len(recs))
	}
}

func TestGeneratedSeventeenSizeGroups(t *testing.T) {
	// The default config must be able to reproduce the paper's "17
	// different size types" at sufficient sample volume.
	cfg := DefaultConfig(20000, 9)
	if len(cfg.Sizes) != 17 {
		t.Fatalf("default config has %d sizes, want 17", len(cfg.Sizes))
	}
	jobs, err := GenerateJobs(cfg)
	if err != nil {
		t.Fatal(err)
	}
	distinct := make(map[int]bool)
	for _, j := range jobs {
		g := buildDAG(t, j)
		if g.Size() >= 2 {
			distinct[g.Size()] = true
		}
	}
	if len(distinct) != 17 {
		t.Fatalf("distinct sizes = %d, want 17", len(distinct))
	}
}

func TestGeneratedRedundantNaming(t *testing.T) {
	// The generator must reproduce the trace's over-specified naming
	// style on a meaningful share of aggregate tasks (the paper's
	// R5_4_3_2_1 example), without ever corrupting the DAG.
	jobs := defaultGen(t, 5000, 10)
	withRedundant, totalEdges, redundantEdges := 0, 0, 0
	for _, j := range jobs {
		g := buildDAG(t, j)
		if g.Size() < 4 {
			continue
		}
		r, err := g.RedundantEdges()
		if err != nil {
			t.Fatal(err)
		}
		totalEdges += g.NumEdges()
		redundantEdges += r
		if r > 0 {
			withRedundant++
		}
	}
	if withRedundant == 0 {
		t.Fatal("no jobs with paper-style redundant dependency naming")
	}
	if redundantEdges == 0 || redundantEdges >= totalEdges/2 {
		t.Fatalf("redundant edge share implausible: %d of %d", redundantEdges, totalEdges)
	}
}
