package tracegen

import (
	"fmt"
	"math/rand"

	"jobgraph/internal/trace"
)

// GenerateMachines synthesizes the machine_meta table: n servers with
// the trace's typical 96-core profile, spread over failure domains.
func GenerateMachines(n int, seed int64) ([]trace.MachineRecord, error) {
	if n <= 0 {
		return nil, fmt.Errorf("tracegen: machine count %d <= 0", n)
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]trace.MachineRecord, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, trace.MachineRecord{
			MachineID:      fmt.Sprintf("m_%d", i),
			TimeStamp:      0,
			FailureDomain1: fmt.Sprintf("fd_%d", 1+rng.Intn(20)),
			FailureDomain2: fmt.Sprintf("rack_%d", 1+rng.Intn(200)),
			CPUNum:         96,
			MemSize:        1, // capacities are normalized in the trace
			Status:         "USING",
		})
	}
	return out, nil
}
