package tracegen

import (
	"math/rand"
	"testing"
	"testing/quick"

	"jobgraph/internal/dag"
	"jobgraph/internal/pattern"
)

// planToGraph materializes a blueprint as a dag.Graph.
func planToGraph(t testing.TB, bp *blueprint) *dag.Graph {
	t.Helper()
	g := dag.New("bp")
	for i := 0; i < bp.n; i++ {
		if err := g.AddNode(dag.Node{ID: dag.NodeID(i + 1), Type: bp.types[i]}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < bp.n; i++ {
		for _, d := range bp.deps[i] {
			if err := g.AddEdge(dag.NodeID(d), dag.NodeID(i+1)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return g
}

func TestChainPlanShape(t *testing.T) {
	for _, n := range []int{2, 3, 5, 31} {
		g := planToGraph(t, chainPlan(n))
		s, err := pattern.Classify(g)
		if err != nil {
			t.Fatal(err)
		}
		if s != pattern.Chain {
			t.Fatalf("chainPlan(%d) classified as %v", n, s)
		}
	}
}

func TestChainPlanTypeBalance(t *testing.T) {
	// Chains of ≥4 tasks must deploy more R than M (§V-C).
	g := planToGraph(t, chainPlan(6))
	counts := g.TypeCounts()
	if counts["R"] <= counts["M"] {
		t.Fatalf("chain(6) types = %v, want R > M", counts)
	}
	// Tiny chains are allowed to be Map-heavy or balanced.
	g = planToGraph(t, chainPlan(3))
	counts = g.TypeCounts()
	if counts["M"] < counts["R"] {
		t.Fatalf("chain(3) types = %v, want M >= R", counts)
	}
}

func TestShapePlansClassifyCorrectly(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		kind shapeKind
		want pattern.Shape
		min  int
	}{
		{shapeInvTriangle, pattern.InvertedTriangle, 3},
		{shapeDiamond, pattern.Diamond, 4},
		{shapeHourglass, pattern.Hourglass, 5},
		{shapeTrapezium, pattern.Trapezium, 3},
	}
	for _, c := range cases {
		for n := c.min; n <= 31; n++ {
			for trial := 0; trial < 5; trial++ {
				g := planToGraph(t, plan(c.kind, n, rng))
				if g.Size() != n {
					t.Fatalf("%v(%d): generated %d tasks", c.kind, n, g.Size())
				}
				got, err := pattern.Classify(g)
				if err != nil {
					t.Fatal(err)
				}
				if got != c.want {
					t.Fatalf("%v(%d) trial %d classified as %v, widths %v",
						c.kind, n, trial, got, mustWidths(t, g))
				}
			}
		}
	}
}

func mustWidths(t testing.TB, g *dag.Graph) []int {
	t.Helper()
	w, err := g.WidthProfile()
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestHybridPlanIsConvergent(t *testing.T) {
	// Hybrid (triangle + tail) classifies as a convergent shape under
	// the width-profile taxonomy; it must at minimum be a valid DAG of
	// the right size with a single sink.
	rng := rand.New(rand.NewSource(2))
	for n := 4; n <= 31; n++ {
		g := planToGraph(t, plan(shapeHybrid, n, rng))
		if g.Size() != n {
			t.Fatalf("hybrid(%d): %d tasks", n, g.Size())
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
		if len(g.Sinks()) != 1 {
			t.Fatalf("hybrid(%d): %d sinks, want 1", n, len(g.Sinks()))
		}
	}
}

func TestLevelPlanWidthsExactProperty(t *testing.T) {
	// The realized longest-path width profile must equal the plan.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nLevels := 2 + rng.Intn(4)
		widths := make([]int, nLevels)
		for i := range widths {
			widths[i] = 1 + rng.Intn(5)
		}
		bp := levelPlan(widths, rng)
		g := dag.New("w")
		for i := 0; i < bp.n; i++ {
			if err := g.AddNode(dag.Node{ID: dag.NodeID(i + 1), Type: bp.types[i]}); err != nil {
				return false
			}
		}
		for i := 0; i < bp.n; i++ {
			for _, d := range bp.deps[i] {
				if err := g.AddEdge(dag.NodeID(d), dag.NodeID(i+1)); err != nil {
					return false
				}
			}
		}
		got, err := g.WidthProfile()
		if err != nil || len(got) != len(widths) {
			return false
		}
		for i := range widths {
			if got[i] != widths[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFeasibility(t *testing.T) {
	if feasible(shapeDiamond, 3) || !feasible(shapeDiamond, 4) {
		t.Fatal("diamond feasibility")
	}
	if feasible(shapeHourglass, 4) || !feasible(shapeHourglass, 5) {
		t.Fatal("hourglass feasibility")
	}
	if feasible(shapeChain, 1) || !feasible(shapeChain, 2) {
		t.Fatal("chain feasibility")
	}
	if feasible(shapeChain, maxChainSize+1) || !feasible(shapeChain, maxChainSize) {
		t.Fatal("chain size cap")
	}
	if feasible(numShapes, 10) {
		t.Fatal("unknown shape feasible")
	}
}

func TestShapeNames(t *testing.T) {
	seen := make(map[string]bool)
	for s := shapeKind(0); s < numShapes; s++ {
		name := s.String()
		if name == "unknown" || seen[name] {
			t.Fatalf("bad or duplicate shape name %q", name)
		}
		seen[name] = true
		if shapeByName(name) != s {
			t.Fatalf("shapeByName(%q) mismatch", name)
		}
	}
	if numShapes.String() != "unknown" {
		t.Fatal("sentinel should be unknown")
	}
}
