package sched

import (
	"fmt"
	"math/rand"
	"sort"

	"jobgraph/internal/trace"
)

// PlacementPolicy selects how job instances are spread over machines.
type PlacementPolicy int

// Placement policies.
const (
	// RandomPlacement assigns each instance to a uniformly random
	// machine — the trace's apparent default, producing co-location
	// lifts near 1.
	RandomPlacement PlacementPolicy = iota
	// LeastLoadedPlacement assigns each instance to the machine with
	// the fewest instances so far (deterministic tie-break by id),
	// minimizing load imbalance.
	LeastLoadedPlacement
	// GroupPackedPlacement partitions machines across groups and keeps
	// each group's instances on its own partition — the segregated
	// extreme a group-aware placer could implement to isolate
	// interference-sensitive topologies.
	GroupPackedPlacement
)

// String names the policy.
func (p PlacementPolicy) String() string {
	switch p {
	case RandomPlacement:
		return "random"
	case LeastLoadedPlacement:
		return "least-loaded"
	case GroupPackedPlacement:
		return "group-packed"
	default:
		return fmt.Sprintf("placement(%d)", int(p))
	}
}

// PlacementJob is one job to place: a total instance count plus the
// cluster-group label driving group-aware policies.
type PlacementJob struct {
	JobID     string
	Group     string
	Instances int
}

// PlacementOptions configures Place.
type PlacementOptions struct {
	Machines int // size of the machine pool
	Policy   PlacementPolicy
	Seed     int64
}

// Place assigns every instance of every job to a machine under the
// given policy and returns instance records (MachineID, JobName set)
// ready for co-location and imbalance analysis.
func Place(jobs []PlacementJob, opt PlacementOptions) ([]trace.InstanceRecord, error) {
	if opt.Machines < 1 {
		return nil, fmt.Errorf("sched: need >=1 machine, got %d", opt.Machines)
	}
	switch opt.Policy {
	case RandomPlacement, LeastLoadedPlacement, GroupPackedPlacement:
	default:
		return nil, fmt.Errorf("sched: unknown placement policy %d", int(opt.Policy))
	}
	for i, j := range jobs {
		if j.JobID == "" {
			return nil, fmt.Errorf("sched: job %d has empty id", i)
		}
		if j.Instances < 0 {
			return nil, fmt.Errorf("sched: job %s has negative instances", j.JobID)
		}
	}

	rng := rand.New(rand.NewSource(opt.Seed))
	var out []trace.InstanceRecord

	switch opt.Policy {
	case RandomPlacement:
		for _, j := range jobs {
			for i := 0; i < j.Instances; i++ {
				out = append(out, record(j, i, 1+rng.Intn(opt.Machines)))
			}
		}
	case LeastLoadedPlacement:
		load := make([]int, opt.Machines)
		for _, j := range jobs {
			for i := 0; i < j.Instances; i++ {
				m := argminLoad(load)
				load[m]++
				out = append(out, record(j, i, m+1))
			}
		}
	case GroupPackedPlacement:
		partitions := groupPartitions(jobs, opt.Machines)
		for _, j := range jobs {
			part := partitions[j.Group]
			for i := 0; i < j.Instances; i++ {
				m := part.lo + rng.Intn(part.hi-part.lo+1)
				out = append(out, record(j, i, m))
			}
		}
	}
	return out, nil
}

func record(j PlacementJob, seq, machine int) trace.InstanceRecord {
	return trace.InstanceRecord{
		InstanceName: fmt.Sprintf("%s_%d", j.JobID, seq+1),
		TaskName:     "placed",
		JobName:      j.JobID,
		Status:       trace.StatusTerminated,
		MachineID:    fmt.Sprintf("m_%d", machine),
		SeqNo:        seq + 1,
		TotalSeqNo:   j.Instances,
	}
}

func argminLoad(load []int) int {
	best := 0
	for i, l := range load {
		if l < load[best] {
			best = i
		}
	}
	return best
}

// machineRange is an inclusive 1-based machine id range.
type machineRange struct{ lo, hi int }

// groupPartitions slices the machine pool into contiguous per-group
// ranges proportional to each group's instance demand (at least one
// machine each), groups in sorted order for determinism.
func groupPartitions(jobs []PlacementJob, machines int) map[string]machineRange {
	demand := make(map[string]int)
	for _, j := range jobs {
		demand[j.Group] += j.Instances
	}
	groups := make([]string, 0, len(demand))
	total := 0
	for g, d := range demand {
		groups = append(groups, g)
		total += d
	}
	sort.Strings(groups)

	out := make(map[string]machineRange, len(groups))
	if len(groups) == 0 {
		return out
	}
	// Proportional allocation with a 1-machine floor; hand out the
	// remainder left to right.
	alloc := make([]int, len(groups))
	assigned := 0
	for i, g := range groups {
		share := 1
		if total > 0 {
			share = machines * demand[g] / total
			if share < 1 {
				share = 1
			}
		}
		alloc[i] = share
		assigned += share
	}
	// Trim or extend to exactly `machines` (floors may overshoot on
	// many tiny groups; overshoot falls back to sharing the tail range).
	for i := 0; assigned > machines && i < len(alloc); {
		if alloc[i] > 1 {
			alloc[i]--
			assigned--
		} else {
			i++
		}
	}
	for i := 0; assigned < machines; i = (i + 1) % len(alloc) {
		alloc[i]++
		assigned++
	}

	lo := 1
	for i, g := range groups {
		hi := lo + alloc[i] - 1
		if hi > machines {
			hi = machines
		}
		if lo > machines {
			lo = machines
		}
		out[g] = machineRange{lo: lo, hi: hi}
		lo = hi + 1
	}
	return out
}
