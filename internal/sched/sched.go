// Package sched is a discrete-event simulator for DAG-aware batch-job
// scheduling on a fixed pool of machine slots. It is the downstream
// application motivating the paper: understanding job topology "helps us
// foresee resource demands and execution time of new jobs and make
// better decisions in job scheduling" (§I). The experiments compare a
// FIFO task scheduler against policies that prioritize by structural
// knowledge (critical-path length, cluster-group profiles).
package sched

import (
	"container/heap"
	"fmt"
	"sort"

	"jobgraph/internal/dag"
)

// Policy orders ready tasks for dispatch.
type Policy int

// Scheduling policies.
const (
	// FIFO dispatches ready tasks in job-arrival order.
	FIFO Policy = iota
	// CriticalPathFirst dispatches the ready task with the longest
	// remaining downstream duration first (classic list scheduling with
	// upward-rank priority).
	CriticalPathFirst
	// GroupAware is CriticalPathFirst with a job-level boost supplied
	// by the caller (e.g. from cluster-group statistics): jobs whose
	// group historically has long critical paths are prioritized.
	GroupAware
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case FIFO:
		return "fifo"
	case CriticalPathFirst:
		return "critical-path"
	case GroupAware:
		return "group-aware"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// JobSpec is one job to schedule.
type JobSpec struct {
	Graph   *dag.Graph
	Arrival float64
	// GroupPriority is an optional boost used by GroupAware: larger
	// values are scheduled earlier. Typically the mean critical-path
	// duration of the job's cluster group.
	GroupPriority float64
}

// Options configures a simulation run.
type Options struct {
	Slots  int // concurrent task slots in the cluster
	Policy Policy
}

// JobResult is the per-job outcome.
type JobResult struct {
	JobID      string
	Arrival    float64
	Start      float64 // first task dispatch
	Finish     float64 // last task completion
	Completion float64 // Finish - Arrival (the paper's completion time)
}

// Result is the simulation outcome.
type Result struct {
	Jobs     []JobResult
	Makespan float64 // time the last task finishes
	// MeanCompletion is the average job completion time, the headline
	// comparison metric between policies.
	MeanCompletion float64
}

// event types for the simulation heap.
type taskDone struct {
	at   float64
	job  int
	task dag.NodeID
}

type doneHeap []taskDone

func (h doneHeap) Len() int            { return len(h) }
func (h doneHeap) Less(i, j int) bool  { return h[i].at < h[j].at }
func (h doneHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *doneHeap) Push(x interface{}) { *h = append(*h, x.(taskDone)) }
func (h *doneHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// readyTask is one dispatchable task with its priority key.
type readyTask struct {
	job     int
	task    dag.NodeID
	rank    float64 // upward rank (remaining critical path duration)
	boost   float64 // group priority
	seq     int     // FIFO tiebreak: global enqueue order
	dur     float64
	arrival float64
}

// Simulate runs the jobs through a cluster with the given options and
// returns per-job completion times. Jobs must be valid DAGs.
func Simulate(jobs []JobSpec, opt Options) (*Result, error) {
	if opt.Slots < 1 {
		return nil, fmt.Errorf("sched: need >=1 slot, got %d", opt.Slots)
	}
	switch opt.Policy {
	case FIFO, CriticalPathFirst, GroupAware:
	default:
		return nil, fmt.Errorf("sched: unknown policy %d", opt.Policy)
	}
	type jobState struct {
		spec      JobSpec
		remaining int
		indeg     map[dag.NodeID]int
		rank      map[dag.NodeID]float64
		started   bool
		res       JobResult
	}
	states := make([]*jobState, len(jobs))
	for i, j := range jobs {
		if j.Graph == nil || j.Graph.Size() == 0 {
			return nil, fmt.Errorf("sched: job %d is empty", i)
		}
		if err := j.Graph.Validate(); err != nil {
			return nil, fmt.Errorf("sched: job %d: %w", i, err)
		}
		if j.Arrival < 0 {
			return nil, fmt.Errorf("sched: job %d has negative arrival", i)
		}
		ranks, err := upwardRanks(j.Graph)
		if err != nil {
			return nil, err
		}
		st := &jobState{
			spec:      j,
			remaining: j.Graph.Size(),
			indeg:     make(map[dag.NodeID]int, j.Graph.Size()),
			rank:      ranks,
			res:       JobResult{JobID: j.Graph.JobID, Arrival: j.Arrival},
		}
		for _, id := range j.Graph.NodeIDs() {
			st.indeg[id] = j.Graph.InDegree(id)
		}
		states[i] = st
	}

	// Arrival order determines when source tasks enter the ready set.
	arrivalOrder := make([]int, len(jobs))
	for i := range arrivalOrder {
		arrivalOrder[i] = i
	}
	sort.SliceStable(arrivalOrder, func(a, b int) bool {
		return states[arrivalOrder[a]].spec.Arrival < states[arrivalOrder[b]].spec.Arrival
	})

	var ready []readyTask
	seq := 0
	enqueue := func(job int, task dag.NodeID, now float64) {
		st := states[job]
		ready = append(ready, readyTask{
			job:     job,
			task:    task,
			rank:    st.rank[task],
			boost:   st.spec.GroupPriority,
			seq:     seq,
			dur:     st.spec.Graph.Node(task).Duration,
			arrival: st.spec.Arrival,
		})
		seq++
		_ = now
	}

	pick := func(pol Policy) int {
		best := 0
		for i := 1; i < len(ready); i++ {
			if readyLess(pol, ready[i], ready[best]) {
				best = i
			}
		}
		return best
	}

	events := &doneHeap{}
	heap.Init(events)
	free := opt.Slots
	now := 0.0
	nextArrival := 0
	pendingDone := 0

	admit := func() {
		for nextArrival < len(arrivalOrder) {
			idx := arrivalOrder[nextArrival]
			if states[idx].spec.Arrival > now {
				break
			}
			for _, src := range states[idx].spec.Graph.Sources() {
				enqueue(idx, src, now)
			}
			nextArrival++
		}
	}

	dispatch := func() {
		for free > 0 && len(ready) > 0 {
			i := pick(opt.Policy)
			rt := ready[i]
			ready[i] = ready[len(ready)-1]
			ready = ready[:len(ready)-1]
			st := states[rt.job]
			if !st.started {
				st.started = true
				st.res.Start = now
			}
			heap.Push(events, taskDone{at: now + rt.dur, job: rt.job, task: rt.task})
			pendingDone++
			free--
		}
	}

	admit()
	dispatch()
	for pendingDone > 0 || nextArrival < len(arrivalOrder) {
		if pendingDone == 0 {
			// Idle until the next arrival.
			now = states[arrivalOrder[nextArrival]].spec.Arrival
			admit()
			dispatch()
			continue
		}
		ev := heap.Pop(events).(taskDone)
		pendingDone--
		now = ev.at
		free++
		st := states[ev.job]
		st.remaining--
		if st.remaining == 0 {
			st.res.Finish = now
			st.res.Completion = now - st.res.Arrival
		}
		for _, succ := range st.spec.Graph.Succ(ev.task) {
			st.indeg[succ]--
			if st.indeg[succ] == 0 {
				enqueue(ev.job, succ, now)
			}
		}
		admit()
		dispatch()
	}

	res := &Result{Jobs: make([]JobResult, len(states))}
	var sum float64
	for i, st := range states {
		res.Jobs[i] = st.res
		if st.res.Finish > res.Makespan {
			res.Makespan = st.res.Finish
		}
		sum += st.res.Completion
	}
	res.MeanCompletion = sum / float64(len(states))
	return res, nil
}

// readyLess reports whether a should be dispatched before b under pol.
func readyLess(pol Policy, a, b readyTask) bool {
	switch pol {
	case CriticalPathFirst:
		if a.rank != b.rank {
			return a.rank > b.rank
		}
	case GroupAware:
		if a.boost != b.boost {
			return a.boost > b.boost
		}
		if a.rank != b.rank {
			return a.rank > b.rank
		}
	}
	// FIFO and all ties: earliest job arrival, then enqueue order.
	if a.arrival != b.arrival {
		return a.arrival < b.arrival
	}
	return a.seq < b.seq
}

// upwardRanks computes, per task, the longest duration path from the
// task (inclusive) to any sink — the classic HEFT upward rank with unit
// communication cost zero.
func upwardRanks(g *dag.Graph) (map[dag.NodeID]float64, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, fmt.Errorf("sched: %w", err)
	}
	rank := make(map[dag.NodeID]float64, len(order))
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		var best float64
		for _, s := range g.Succ(id) {
			if rank[s] > best {
				best = rank[s]
			}
		}
		rank[id] = best + g.Node(id).Duration
	}
	return rank, nil
}
