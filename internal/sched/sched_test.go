package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"jobgraph/internal/dag"
	"jobgraph/internal/taskname"
)

// mkChain builds a chain job with the given per-task durations.
func mkChain(t testing.TB, id string, durs ...float64) *dag.Graph {
	t.Helper()
	g := dag.New(id)
	for i, d := range durs {
		if err := g.AddNode(dag.Node{ID: dag.NodeID(i + 1), Type: taskname.TypeMap, Duration: d}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < len(durs); i++ {
		if err := g.AddEdge(dag.NodeID(i), dag.NodeID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// mkFork builds one source feeding k parallel children into a sink.
func mkFork(t testing.TB, id string, k int, dur float64) *dag.Graph {
	t.Helper()
	g := dag.New(id)
	if err := g.AddNode(dag.Node{ID: 1, Type: taskname.TypeMap, Duration: dur}); err != nil {
		t.Fatal(err)
	}
	sink := dag.NodeID(k + 2)
	if err := g.AddNode(dag.Node{ID: sink, Type: taskname.TypeReduce, Duration: dur}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		id := dag.NodeID(i + 2)
		if err := g.AddNode(dag.Node{ID: id, Type: taskname.TypeReduce, Duration: dur}); err != nil {
			t.Fatal(err)
		}
		if err := g.AddEdge(1, id); err != nil {
			t.Fatal(err)
		}
		if err := g.AddEdge(id, sink); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestSimulateSingleChain(t *testing.T) {
	g := mkChain(t, "c", 10, 20, 30)
	res, err := Simulate([]JobSpec{{Graph: g}}, Options{Slots: 4, Policy: FIFO})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 60 {
		t.Fatalf("makespan = %g, want 60", res.Makespan)
	}
	if res.Jobs[0].Completion != 60 || res.Jobs[0].Start != 0 {
		t.Fatalf("job result = %+v", res.Jobs[0])
	}
}

func TestSimulateParallelismLimitedBySlots(t *testing.T) {
	// Fork with 4 parallel middle tasks of 10s each: with 4 slots the
	// middle layer takes 10s; with 1 slot it takes 40s.
	g := mkFork(t, "f", 4, 10)
	wide, err := Simulate([]JobSpec{{Graph: g}}, Options{Slots: 8, Policy: FIFO})
	if err != nil {
		t.Fatal(err)
	}
	if wide.Makespan != 30 {
		t.Fatalf("wide makespan = %g, want 30", wide.Makespan)
	}
	narrow, err := Simulate([]JobSpec{{Graph: g}}, Options{Slots: 1, Policy: FIFO})
	if err != nil {
		t.Fatal(err)
	}
	if narrow.Makespan != 60 { // 6 tasks × 10s serialized
		t.Fatalf("narrow makespan = %g, want 60", narrow.Makespan)
	}
}

func TestSimulateRespectsDependencies(t *testing.T) {
	g := mkChain(t, "c", 5, 5)
	res, err := Simulate([]JobSpec{{Graph: g}}, Options{Slots: 2, Policy: FIFO})
	if err != nil {
		t.Fatal(err)
	}
	// Even with 2 slots, a chain cannot parallelize.
	if res.Makespan != 10 {
		t.Fatalf("makespan = %g, want 10", res.Makespan)
	}
}

func TestSimulateArrivals(t *testing.T) {
	a := mkChain(t, "a", 10)
	b := mkChain(t, "b", 10)
	res, err := Simulate([]JobSpec{
		{Graph: a, Arrival: 0},
		{Graph: b, Arrival: 100},
	}, Options{Slots: 1, Policy: FIFO})
	if err != nil {
		t.Fatal(err)
	}
	// Cluster idles between jobs.
	if res.Jobs[1].Start != 100 || res.Jobs[1].Finish != 110 {
		t.Fatalf("job b = %+v", res.Jobs[1])
	}
	if res.Makespan != 110 {
		t.Fatalf("makespan = %g", res.Makespan)
	}
}

func TestCriticalPathFirstBeatsFIFOOnMixedLoad(t *testing.T) {
	// One long chain (critical) and many short independent singles.
	// FIFO by arrival lets shorts block the chain on a single slot;
	// CP-first starts the chain immediately.
	jobs := []JobSpec{}
	long := mkChain(t, "long", 50, 50, 50)
	for i := 0; i < 6; i++ {
		jobs = append(jobs, JobSpec{Graph: mkChain(t, "s", 10), Arrival: 0})
	}
	jobs = append(jobs, JobSpec{Graph: long, Arrival: 0}) // arrives "last"
	fifo, err := Simulate(jobs, Options{Slots: 2, Policy: FIFO})
	if err != nil {
		t.Fatal(err)
	}
	cp, err := Simulate(jobs, Options{Slots: 2, Policy: CriticalPathFirst})
	if err != nil {
		t.Fatal(err)
	}
	if cp.Makespan >= fifo.Makespan {
		t.Fatalf("CP-first makespan %g !< FIFO %g", cp.Makespan, fifo.Makespan)
	}
}

func TestGroupAwareUsesBoost(t *testing.T) {
	// Two identical jobs; the boosted one must start first under
	// GroupAware despite arriving at the same time with a later seq.
	a := mkChain(t, "a", 10, 10)
	b := mkChain(t, "b", 10, 10)
	res, err := Simulate([]JobSpec{
		{Graph: a, GroupPriority: 0},
		{Graph: b, GroupPriority: 5},
	}, Options{Slots: 1, Policy: GroupAware})
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs[1].Start != 0 {
		t.Fatalf("boosted job started at %g, want 0", res.Jobs[1].Start)
	}
	if res.Jobs[0].Start == 0 {
		t.Fatal("unboosted job should wait")
	}
}

func TestSimulateValidation(t *testing.T) {
	g := mkChain(t, "a", 1)
	if _, err := Simulate([]JobSpec{{Graph: g}}, Options{Slots: 0}); err == nil {
		t.Fatal("zero slots accepted")
	}
	if _, err := Simulate([]JobSpec{{Graph: g}}, Options{Slots: 1, Policy: Policy(99)}); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if _, err := Simulate([]JobSpec{{Graph: dag.New("e")}}, Options{Slots: 1}); err == nil {
		t.Fatal("empty job accepted")
	}
	if _, err := Simulate([]JobSpec{{Graph: g, Arrival: -1}}, Options{Slots: 1}); err == nil {
		t.Fatal("negative arrival accepted")
	}
}

func TestPolicyString(t *testing.T) {
	if FIFO.String() != "fifo" || CriticalPathFirst.String() != "critical-path" ||
		GroupAware.String() != "group-aware" {
		t.Fatal("policy names")
	}
	if Policy(42).String() != "policy(42)" {
		t.Fatal("unknown policy name")
	}
}

func randomJob(t testing.TB, rng *rand.Rand, id string) *dag.Graph {
	t.Helper()
	n := 1 + rng.Intn(8)
	g := dag.New(id)
	for i := 1; i <= n; i++ {
		if err := g.AddNode(dag.Node{
			ID: dag.NodeID(i), Type: taskname.TypeMap,
			Duration: 1 + float64(rng.Intn(20)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= n; i++ {
		for j := i + 1; j <= n; j++ {
			if rng.Float64() < 0.3 {
				if err := g.AddEdge(dag.NodeID(i), dag.NodeID(j)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return g
}

func TestSimulateInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nJobs := 1 + rng.Intn(8)
		jobs := make([]JobSpec, nJobs)
		for i := range jobs {
			jobs[i] = JobSpec{
				Graph:   randomJob(t, rng, "j"),
				Arrival: float64(rng.Intn(100)),
			}
		}
		slots := 1 + rng.Intn(4)
		for _, pol := range []Policy{FIFO, CriticalPathFirst, GroupAware} {
			res, err := Simulate(jobs, Options{Slots: slots, Policy: pol})
			if err != nil {
				return false
			}
			for i, jr := range res.Jobs {
				// Completion >= critical path duration (lower bound).
				cpd, _ := jobs[i].Graph.CriticalPathDuration()
				if jr.Completion < cpd-1e-9 {
					return false
				}
				if jr.Start < jobs[i].Arrival-1e-9 || jr.Finish < jr.Start {
					return false
				}
				if jr.Finish > res.Makespan+1e-9 {
					return false
				}
			}
			// Makespan >= total work / slots (capacity bound) given all
			// arrivals at or after 0.
			var work float64
			for _, j := range jobs {
				for _, id := range j.Graph.NodeIDs() {
					work += j.Graph.Node(id).Duration
				}
			}
			if res.Makespan < work/float64(slots)-1e-9-100 {
				// -100 slack for late arrivals shifting the window.
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSimulateWorkConservingOnBacklog(t *testing.T) {
	// With all jobs arriving at t=0, makespan with S slots is at most
	// total work (never worse than a single slot).
	rng := rand.New(rand.NewSource(4))
	var jobs []JobSpec
	var work float64
	for i := 0; i < 5; i++ {
		g := randomJob(t, rng, "j")
		jobs = append(jobs, JobSpec{Graph: g})
		for _, id := range g.NodeIDs() {
			work += g.Node(id).Duration
		}
	}
	res, err := Simulate(jobs, Options{Slots: 3, Policy: CriticalPathFirst})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan > work+1e-9 {
		t.Fatalf("makespan %g exceeds serialized work %g", res.Makespan, work)
	}
}
