package sched

import (
	"math/rand"
	"strconv"
	"strings"
	"testing"
	"testing/quick"

	"jobgraph/internal/coloc"
	"jobgraph/internal/resource"
)

func placementJobs(n int, seed int64) []PlacementJob {
	rng := rand.New(rand.NewSource(seed))
	groups := []string{"A", "B", "C"}
	jobs := make([]PlacementJob, n)
	for i := range jobs {
		jobs[i] = PlacementJob{
			JobID:     "j_" + string(rune('a'+i%26)) + string(rune('0'+i/26)),
			Group:     groups[rng.Intn(len(groups))],
			Instances: 1 + rng.Intn(20),
		}
	}
	return jobs
}

func groupMap(jobs []PlacementJob) map[string]string {
	m := make(map[string]string, len(jobs))
	for _, j := range jobs {
		m[j.JobID] = j.Group
	}
	return m
}

func TestPlaceInstanceCounts(t *testing.T) {
	jobs := placementJobs(30, 1)
	want := 0
	for _, j := range jobs {
		want += j.Instances
	}
	for _, pol := range []PlacementPolicy{RandomPlacement, LeastLoadedPlacement, GroupPackedPlacement} {
		recs, err := Place(jobs, PlacementOptions{Machines: 10, Policy: pol, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != want {
			t.Fatalf("%s: %d records, want %d", pol, len(recs), want)
		}
		for _, r := range recs {
			if r.MachineID == "" || !strings.HasPrefix(r.MachineID, "m_") {
				t.Fatalf("%s: bad machine id %q", pol, r.MachineID)
			}
			if err := r.Validate(); err != nil {
				t.Fatalf("%s: %v", pol, err)
			}
		}
	}
}

func TestPlaceLeastLoadedBalances(t *testing.T) {
	jobs := placementJobs(50, 2)
	recs, err := Place(jobs, PlacementOptions{Machines: 16, Policy: LeastLoadedPlacement, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	gini, err := resource.LoadImbalance(recs)
	if err != nil {
		t.Fatal(err)
	}
	// Perfectly level modulo rounding: near-zero Gini.
	if gini > 0.01 {
		t.Fatalf("least-loaded Gini = %.4f, want ~0", gini)
	}
	random, err := Place(jobs, PlacementOptions{Machines: 16, Policy: RandomPlacement, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	giniRandom, err := resource.LoadImbalance(random)
	if err != nil {
		t.Fatal(err)
	}
	if giniRandom <= gini {
		t.Fatalf("random Gini %.4f not above least-loaded %.4f", giniRandom, gini)
	}
}

func TestPlaceGroupPackedSegregates(t *testing.T) {
	jobs := placementJobs(60, 3)
	recs, err := Place(jobs, PlacementOptions{Machines: 30, Policy: GroupPackedPlacement, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := coloc.Analyze(recs, groupMap(jobs))
	if err != nil {
		t.Fatal(err)
	}
	for _, ov := range res.Overlaps {
		if ov.Observed != 0 {
			t.Fatalf("group-packed placement co-located %s+%s on %d machines",
				ov.GroupA, ov.GroupB, ov.Observed)
		}
	}
}

func TestPlaceRandomMixes(t *testing.T) {
	jobs := placementJobs(100, 4)
	recs, err := Place(jobs, PlacementOptions{Machines: 20, Policy: RandomPlacement, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := coloc.Analyze(recs, groupMap(jobs))
	if err != nil {
		t.Fatal(err)
	}
	// With heavy load per machine, every group pair should co-occur.
	for _, ov := range res.Overlaps {
		if ov.Observed == 0 {
			t.Fatalf("random placement never co-located %s+%s", ov.GroupA, ov.GroupB)
		}
		if ov.Lift < 0.5 || ov.Lift > 1.5 {
			t.Fatalf("random placement lift %.2f for %s+%s", ov.Lift, ov.GroupA, ov.GroupB)
		}
	}
}

func TestPlaceValidation(t *testing.T) {
	jobs := placementJobs(3, 5)
	if _, err := Place(jobs, PlacementOptions{Machines: 0}); err == nil {
		t.Fatal("zero machines accepted")
	}
	if _, err := Place(jobs, PlacementOptions{Machines: 5, Policy: PlacementPolicy(9)}); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if _, err := Place([]PlacementJob{{JobID: "", Instances: 1}},
		PlacementOptions{Machines: 2}); err == nil {
		t.Fatal("empty job id accepted")
	}
	if _, err := Place([]PlacementJob{{JobID: "j", Instances: -1}},
		PlacementOptions{Machines: 2}); err == nil {
		t.Fatal("negative instances accepted")
	}
}

func TestPlaceDeterministicWithSeed(t *testing.T) {
	jobs := placementJobs(20, 6)
	a, err := Place(jobs, PlacementOptions{Machines: 8, Policy: RandomPlacement, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Place(jobs, PlacementOptions{Machines: 8, Policy: RandomPlacement, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].MachineID != b[i].MachineID {
			t.Fatal("same seed, different placement")
		}
	}
}

func TestPlaceMoreGroupsThanMachines(t *testing.T) {
	// Degenerate: 5 groups, 2 machines — must not panic and must place
	// every instance on a valid machine.
	jobs := []PlacementJob{
		{JobID: "a", Group: "g1", Instances: 2},
		{JobID: "b", Group: "g2", Instances: 2},
		{JobID: "c", Group: "g3", Instances: 2},
		{JobID: "d", Group: "g4", Instances: 2},
		{JobID: "e", Group: "g5", Instances: 2},
	}
	recs, err := Place(jobs, PlacementOptions{Machines: 2, Policy: GroupPackedPlacement, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.MachineID != "m_1" && r.MachineID != "m_2" {
			t.Fatalf("instance on invalid machine %q", r.MachineID)
		}
	}
}

func TestPlacementPolicyString(t *testing.T) {
	if RandomPlacement.String() != "random" || LeastLoadedPlacement.String() != "least-loaded" ||
		GroupPackedPlacement.String() != "group-packed" {
		t.Fatal("policy names")
	}
	if PlacementPolicy(9).String() != "placement(9)" {
		t.Fatal("unknown policy name")
	}
}

func TestPlacePropertyAllInstancesPlaced(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		jobs := placementJobs(1+rng.Intn(40), seed)
		machines := 1 + rng.Intn(50)
		pol := []PlacementPolicy{RandomPlacement, LeastLoadedPlacement, GroupPackedPlacement}[rng.Intn(3)]
		recs, err := Place(jobs, PlacementOptions{Machines: machines, Policy: pol, Seed: seed})
		if err != nil {
			return false
		}
		want := 0
		perJob := make(map[string]int)
		for _, j := range jobs {
			want += j.Instances
		}
		if len(recs) != want {
			return false
		}
		for _, r := range recs {
			perJob[r.JobName]++
			if !strings.HasPrefix(r.MachineID, "m_") {
				return false
			}
			id, err := strconv.Atoi(strings.TrimPrefix(r.MachineID, "m_"))
			if err != nil || id < 1 || id > machines {
				return false
			}
		}
		for _, j := range jobs {
			if perJob[j.JobID] != j.Instances {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
