package dag

import (
	"math/rand"
	"testing"
	"testing/quick"

	"jobgraph/internal/taskname"
)

func TestSignatureIdenticalGraphs(t *testing.T) {
	a := paperJob(t)
	b := paperJob(t)
	if a.CanonicalSignature() != b.CanonicalSignature() {
		t.Fatal("identical graphs produced different signatures")
	}
}

func TestSignatureIsomorphismInvariantProperty(t *testing.T) {
	// Relabeling vertices must not change the signature.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		g := randomDAG(rng, n)

		perm := rng.Perm(n) // perm[i] is the new 0-based id for old id i+1
		h := New("relabeled")
		for _, id := range g.NodeIDs() {
			node := *g.Node(id)
			node.ID = NodeID(perm[int(id)-1] + 1)
			if err := h.AddNode(node); err != nil {
				return false
			}
		}
		for _, from := range g.NodeIDs() {
			for _, to := range g.Succ(from) {
				nf := NodeID(perm[int(from)-1] + 1)
				nt := NodeID(perm[int(to)-1] + 1)
				if err := h.AddEdge(nf, nt); err != nil {
					return false
				}
			}
		}
		return g.CanonicalSignature() == h.CanonicalSignature()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSignatureDistinguishesShapes(t *testing.T) {
	chainG := chain(t, 4)
	tri := invertedTriangle(t, 3) // also 4 nodes
	if chainG.CanonicalSignature() == tri.CanonicalSignature() {
		t.Fatal("chain(4) and inverted-triangle(4) collided")
	}
}

func TestSignatureDistinguishesLabels(t *testing.T) {
	// Same shape, different task types must differ (label-aware).
	a := New("a")
	b := New("b")
	for i := 1; i <= 2; i++ {
		if err := a.AddNode(Node{ID: NodeID(i), Type: taskname.TypeMap}); err != nil {
			t.Fatal(err)
		}
		if err := b.AddNode(Node{ID: NodeID(i), Type: taskname.TypeReduce}); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if a.CanonicalSignature() == b.CanonicalSignature() {
		t.Fatal("label-blind signature")
	}
}

func TestSignatureDistinguishesSize(t *testing.T) {
	if chain(t, 3).CanonicalSignature() == chain(t, 4).CanonicalSignature() {
		t.Fatal("chains of different length collided")
	}
}

func TestSignatureEmptyGraph(t *testing.T) {
	if New("a").CanonicalSignature() != New("b").CanonicalSignature() {
		t.Fatal("empty graphs should share a signature")
	}
}
