package dag

// TransitiveReduction returns a copy of g with every edge removed whose
// endpoints remain connected through a longer path — the unique minimal
// DAG with g's reachability relation.
//
// Trace task names over-specify dependencies: the paper's example task
// R5_4_3_2_1 lists all four upstream tasks even though 2 already
// depends on 1 and 4 on 3, so edges 1→5 and 3→5 are transitively
// implied. Reduction separates the *essential* precedence structure
// from the naming convention's redundancy, and the reduction ratio is
// itself a workload characteristic (see the redundant-edge experiment).
func (g *Graph) TransitiveReduction() (*Graph, error) {
	if _, err := g.TopoSort(); err != nil {
		return nil, err
	}
	out := New(g.JobID)
	for _, id := range g.NodeIDs() {
		if err := out.AddNode(*g.Node(id)); err != nil {
			return nil, err
		}
	}
	for _, u := range g.NodeIDs() {
		for _, v := range g.Succ(u) {
			if !reachableAvoiding(g, u, v) {
				if err := out.AddEdge(u, v); err != nil {
					return nil, err
				}
			}
		}
	}
	return out, nil
}

// reachableAvoiding reports whether v is reachable from u without using
// the direct edge u→v.
func reachableAvoiding(g *Graph, u, v NodeID) bool {
	stack := make([]NodeID, 0, len(g.succ[u]))
	for _, s := range g.succ[u] {
		if s != v {
			stack = append(stack, s)
		}
	}
	seen := make(map[NodeID]bool, len(g.nodes))
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if x == v {
			return true
		}
		if seen[x] {
			continue
		}
		seen[x] = true
		stack = append(stack, g.succ[x]...)
	}
	return false
}

// RedundantEdges returns the number of transitively implied edges in g:
// NumEdges() minus the reduced graph's edge count.
func (g *Graph) RedundantEdges() (int, error) {
	r, err := g.TransitiveReduction()
	if err != nil {
		return 0, err
	}
	return g.NumEdges() - r.NumEdges(), nil
}
