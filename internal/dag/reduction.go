package dag

// TransitiveReduction returns a copy of g with every edge removed whose
// endpoints remain connected through a longer path — the unique minimal
// DAG with g's reachability relation.
//
// Trace task names over-specify dependencies: the paper's example task
// R5_4_3_2_1 lists all four upstream tasks even though 2 already
// depends on 1 and 4 on 3, so edges 1→5 and 3→5 are transitively
// implied. Reduction separates the *essential* precedence structure
// from the naming convention's redundancy, and the reduction ratio is
// itself a workload characteristic (see the redundant-edge experiment).
func (g *Graph) TransitiveReduction() (*Graph, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	out := New(g.JobID)
	n := g.NumNodes()
	for p := 0; p < n; p++ {
		if err := out.AddNode(*g.NodeAt(p)); err != nil {
			return nil, err
		}
	}
	// Reused DFS scratch across edge queries.
	seen := make([]bool, n)
	stack := make([]int32, 0, n)
	for u := 0; u < n; u++ {
		for _, v := range g.SuccPos(u) {
			if !g.reachableAvoiding(int32(u), v, seen, stack) {
				if err := out.AddEdge(g.IDAt(u), g.IDAt(int(v))); err != nil {
					return nil, err
				}
			}
		}
	}
	return out, nil
}

// reachableAvoiding reports whether position v is reachable from u
// without using the direct edge u→v. seen and stack are caller-owned
// scratch, cleared here before use.
func (g *Graph) reachableAvoiding(u, v int32, seen []bool, stack []int32) bool {
	for i := range seen {
		seen[i] = false
	}
	stack = stack[:0]
	for _, s := range g.SuccPos(int(u)) {
		if s != v {
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if x == v {
			return true
		}
		if seen[x] {
			continue
		}
		seen[x] = true
		stack = append(stack, g.succAdj[g.succOff[x]:g.succOff[x+1]]...)
	}
	return false
}

// RedundantEdges returns the number of transitively implied edges in g:
// NumEdges() minus the reduced graph's edge count.
func (g *Graph) RedundantEdges() (int, error) {
	r, err := g.TransitiveReduction()
	if err != nil {
		return 0, err
	}
	return g.NumEdges() - r.NumEdges(), nil
}
