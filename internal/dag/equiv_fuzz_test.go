package dag

import (
	"math/rand"
	"slices"
	"sort"
	"testing"
)

// refAdj is the map-based adjacency model the pre-CSR Graph used: plain
// NodeID-keyed successor and predecessor sets. The fuzz target rebuilds
// it independently from the same edge list and demands the CSR Graph
// agree on every query the map era answered.
type refAdj struct {
	ids  []NodeID
	succ map[NodeID]map[NodeID]bool
	pred map[NodeID]map[NodeID]bool
}

func newRefAdj() *refAdj {
	return &refAdj{
		succ: make(map[NodeID]map[NodeID]bool),
		pred: make(map[NodeID]map[NodeID]bool),
	}
}

func (r *refAdj) addNode(id NodeID) {
	r.ids = append(r.ids, id)
	r.succ[id] = make(map[NodeID]bool)
	r.pred[id] = make(map[NodeID]bool)
}

func (r *refAdj) addEdge(from, to NodeID) {
	r.succ[from][to] = true
	r.pred[to][from] = true
}

func (r *refAdj) numEdges() int {
	n := 0
	for _, s := range r.succ {
		n += len(s)
	}
	return n
}

func (r *refAdj) sortedNeighbors(m map[NodeID]bool) []NodeID {
	if len(m) == 0 {
		return nil
	}
	out := make([]NodeID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	slices.Sort(out)
	return out
}

// topo runs Kahn's algorithm with the smallest-id-first tie-break the
// Graph documents, entirely over the map model.
func (r *refAdj) topo() ([]NodeID, bool) {
	indeg := make(map[NodeID]int, len(r.ids))
	for _, id := range r.ids {
		indeg[id] = len(r.pred[id])
	}
	var ready []NodeID
	for _, id := range r.ids {
		if indeg[id] == 0 {
			ready = append(ready, id)
		}
	}
	slices.Sort(ready)
	var order []NodeID
	for len(ready) > 0 {
		id := ready[0]
		ready = ready[1:]
		order = append(order, id)
		for s := range r.succ[id] {
			indeg[s]--
			if indeg[s] == 0 {
				// Insert keeping ready sorted — a toy priority queue.
				i := sort.Search(len(ready), func(i int) bool { return ready[i] >= s })
				ready = append(ready, 0)
				copy(ready[i+1:], ready[i:])
				ready[i] = s
			}
		}
	}
	return order, len(order) == len(r.ids)
}

// checkAgainstRef asserts the CSR graph and the map model agree on node
// set, edge count, per-node neighbor lists (both directions, via both
// the id API and the position API), degree queries, sources/sinks and
// topological order.
func checkAgainstRef(t *testing.T, g *Graph, ref *refAdj) {
	t.Helper()
	if g.Size() != len(ref.ids) {
		t.Fatalf("Size=%d, reference has %d nodes", g.Size(), len(ref.ids))
	}
	if g.NumEdges() != ref.numEdges() {
		t.Fatalf("NumEdges=%d, reference has %d", g.NumEdges(), ref.numEdges())
	}

	sortedIDs := slices.Clone(ref.ids)
	slices.Sort(sortedIDs)
	if got := g.NodeIDs(); !slices.Equal(got, sortedIDs) {
		t.Fatalf("NodeIDs=%v, want %v", got, sortedIDs)
	}

	for p, id := range sortedIDs {
		if got := g.IDAt(p); got != id {
			t.Fatalf("IDAt(%d)=%d, want %d", p, got, id)
		}
		if got := g.PosOf(id); got != p {
			t.Fatalf("PosOf(%d)=%d, want %d", id, got, p)
		}
		wantSucc := ref.sortedNeighbors(ref.succ[id])
		wantPred := ref.sortedNeighbors(ref.pred[id])
		if got := g.Succ(id); !slices.Equal(got, wantSucc) {
			t.Fatalf("Succ(%d)=%v, want %v", id, got, wantSucc)
		}
		if got := g.Pred(id); !slices.Equal(got, wantPred) {
			t.Fatalf("Pred(%d)=%v, want %v", id, got, wantPred)
		}
		if got := g.OutDegree(id); got != len(wantSucc) {
			t.Fatalf("OutDegree(%d)=%d, want %d", id, got, len(wantSucc))
		}
		if got := g.InDegree(id); got != len(wantPred) {
			t.Fatalf("InDegree(%d)=%d, want %d", id, got, len(wantPred))
		}
		// Position-space views must name the same neighbors, ascending.
		for i, q := range g.SuccPos(p) {
			if got := g.IDAt(int(q)); got != wantSucc[i] {
				t.Fatalf("SuccPos(%d)[%d] -> id %d, want %d", p, i, got, wantSucc[i])
			}
		}
		for i, q := range g.PredPos(p) {
			if got := g.IDAt(int(q)); got != wantPred[i] {
				t.Fatalf("PredPos(%d)[%d] -> id %d, want %d", p, i, got, wantPred[i])
			}
		}
		for _, s := range wantSucc {
			if !g.HasEdge(id, s) {
				t.Fatalf("HasEdge(%d,%d)=false, edge exists", id, s)
			}
		}
	}

	var wantSources, wantSinks []NodeID
	for _, id := range sortedIDs {
		if len(ref.pred[id]) == 0 {
			wantSources = append(wantSources, id)
		}
		if len(ref.succ[id]) == 0 {
			wantSinks = append(wantSinks, id)
		}
	}
	if got := g.Sources(); !slices.Equal(got, wantSources) {
		t.Fatalf("Sources=%v, want %v", got, wantSources)
	}
	if got := g.Sinks(); !slices.Equal(got, wantSinks) {
		t.Fatalf("Sinks=%v, want %v", got, wantSinks)
	}

	wantOrder, acyclic := ref.topo()
	gotOrder, err := g.TopoSort()
	if acyclic != (err == nil) {
		t.Fatalf("cycle detection disagrees: reference acyclic=%v, TopoSort err=%v", acyclic, err)
	}
	if acyclic && !slices.Equal(gotOrder, wantOrder) {
		t.Fatalf("TopoSort=%v, want %v", gotOrder, wantOrder)
	}
}

// FuzzCSRMatchesMapAdjacency decodes an arbitrary byte string into a
// node count plus an edge list, builds both the CSR Graph and the
// map-based reference, and demands they agree everywhere. Edge bytes
// also drive interleaved duplicate/self-loop attempts, which must be
// rejected without corrupting either model.
func FuzzCSRMatchesMapAdjacency(f *testing.F) {
	f.Add([]byte{4, 0, 1, 1, 2, 2, 3})          // chain 1->2->3->4
	f.Add([]byte{3, 0, 1, 0, 2})                // fan-out
	f.Add([]byte{3, 0, 2, 1, 2})                // fan-in
	f.Add([]byte{2, 0, 1, 1, 0})                // 2-cycle
	f.Add([]byte{5, 4, 0, 3, 1, 2, 0, 1, 4, 2}) // shuffled order
	f.Add([]byte{1})
	f.Add([]byte{0})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		n := int(data[0])%32 + 1
		g := New("fuzz")
		ref := newRefAdj()
		for id := 1; id <= n; id++ {
			if err := g.AddNode(Node{ID: NodeID(id)}); err != nil {
				t.Fatalf("AddNode(%d): %v", id, err)
			}
			ref.addNode(NodeID(id))
		}
		for i := 1; i+1 < len(data); i += 2 {
			from := NodeID(int(data[i])%n + 1)
			to := NodeID(int(data[i+1])%n + 1)
			err := g.AddEdge(from, to)
			switch {
			case from == to:
				if err == nil {
					t.Fatalf("AddEdge(%d,%d) accepted a self-loop", from, to)
				}
			case ref.succ[from][to]:
				if err == nil {
					t.Fatalf("AddEdge(%d,%d) accepted a duplicate", from, to)
				}
			default:
				if err != nil {
					t.Fatalf("AddEdge(%d,%d): %v", from, to, err)
				}
				ref.addEdge(from, to)
			}
			// Interleave queries so lazy CSR rebuilds are exercised
			// mid-construction, not just once at the end.
			if i%8 == 1 {
				if got := g.NumEdges(); got != ref.numEdges() {
					t.Fatalf("mid-build NumEdges=%d, want %d", got, ref.numEdges())
				}
				_ = g.Succ(from)
			}
		}
		checkAgainstRef(t, g, ref)
	})
}

// TestCSRShuffledEdgeOrderEquivalence is the deterministic property
// test behind the fuzz target: the same DAG built from edge lists in
// many insertion orders must produce identical adjacency and identical
// topological order — insertion order is not observable through the
// CSR view.
func TestCSRShuffledEdgeOrderEquivalence(t *testing.T) {
	const n = 40
	rng := rand.New(rand.NewSource(7))
	type edge struct{ from, to NodeID }
	var edges []edge
	for from := 1; from <= n; from++ {
		for to := from + 1; to <= n; to++ {
			if rng.Intn(5) == 0 { // forward edges only: guaranteed acyclic
				edges = append(edges, edge{NodeID(from), NodeID(to)})
			}
		}
	}

	build := func(perm []int, nodeOrder []NodeID) *Graph {
		g := New("shuffle")
		for _, id := range nodeOrder {
			if err := g.AddNode(Node{ID: id}); err != nil {
				t.Fatalf("AddNode: %v", err)
			}
		}
		for _, i := range perm {
			if err := g.AddEdge(edges[i].from, edges[i].to); err != nil {
				t.Fatalf("AddEdge: %v", err)
			}
		}
		return g
	}

	ref := newRefAdj()
	ids := make([]NodeID, n)
	for i := range ids {
		ids[i] = NodeID(i + 1)
		ref.addNode(ids[i])
	}
	for _, e := range edges {
		ref.addEdge(e.from, e.to)
	}

	perm := make([]int, len(edges))
	for i := range perm {
		perm[i] = i
	}
	baseline := build(perm, ids)
	checkAgainstRef(t, baseline, ref)
	wantTopo, err := baseline.TopoSort()
	if err != nil {
		t.Fatalf("baseline TopoSort: %v", err)
	}

	for trial := 0; trial < 10; trial++ {
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		shuffledIDs := slices.Clone(ids)
		rng.Shuffle(len(shuffledIDs), func(i, j int) {
			shuffledIDs[i], shuffledIDs[j] = shuffledIDs[j], shuffledIDs[i]
		})
		g := build(perm, shuffledIDs)
		checkAgainstRef(t, g, ref)
		gotTopo, err := g.TopoSort()
		if err != nil {
			t.Fatalf("trial %d TopoSort: %v", trial, err)
		}
		if !slices.Equal(gotTopo, wantTopo) {
			t.Fatalf("trial %d: topo order depends on insertion order:\ngot  %v\nwant %v",
				trial, gotTopo, wantTopo)
		}
	}
}
