// Package dag implements the job-DAG representation at the heart of the
// paper: each batch job is a directed acyclic graph whose vertices are
// tasks (labeled with their framework role — Map, Reduce, Join) and whose
// edges are start-after dependencies decoded from task names.
//
// The package provides construction from parsed task names, structural
// validation, and the topological metrics the paper characterizes:
// critical path (depth), level widths (parallelism), degree statistics
// and a canonical structural signature used to detect recurring shapes.
package dag

import (
	"fmt"
	"sort"

	"jobgraph/internal/taskname"
)

// NodeID identifies a task within one job graph. IDs follow the trace's
// 1-based numbering.
type NodeID int

// Node is one task vertex with the attributes the paper attaches to
// running tasks (§IV-A): instance count, duration and planned resources.
type Node struct {
	ID        NodeID
	Type      taskname.Type
	Duration  float64 // seconds, end-to-end for the task
	Instances int
	PlanCPU   float64 // normalized cores requested
	PlanMem   float64 // normalized memory requested
}

// Graph is a directed acyclic graph for a single batch job.
//
// The zero value is not usable; call New.
type Graph struct {
	JobID string

	nodes map[NodeID]*Node
	succ  map[NodeID][]NodeID
	pred  map[NodeID][]NodeID
	edges int
}

// New returns an empty graph for the given job.
func New(jobID string) *Graph {
	return &Graph{
		JobID: jobID,
		nodes: make(map[NodeID]*Node),
		succ:  make(map[NodeID][]NodeID),
		pred:  make(map[NodeID][]NodeID),
	}
}

// AddNode inserts a task vertex. Adding a duplicate ID is an error: task
// ids are unique within a job in the trace, so a duplicate means the
// caller is mixing jobs.
func (g *Graph) AddNode(n Node) error {
	if n.ID <= 0 {
		return fmt.Errorf("dag: node id %d must be positive", n.ID)
	}
	if _, ok := g.nodes[n.ID]; ok {
		return fmt.Errorf("dag: duplicate node %d in job %s", n.ID, g.JobID)
	}
	copied := n
	g.nodes[n.ID] = &copied
	return nil
}

// AddEdge inserts a dependency edge from → to ("to starts after from").
// Both endpoints must exist; self-loops and duplicate edges are errors.
// Cycle freedom is checked globally by Validate, not per edge, so bulk
// construction stays O(V+E).
func (g *Graph) AddEdge(from, to NodeID) error {
	if from == to {
		return fmt.Errorf("dag: self-loop on node %d", from)
	}
	if _, ok := g.nodes[from]; !ok {
		return fmt.Errorf("dag: edge source %d not in graph", from)
	}
	if _, ok := g.nodes[to]; !ok {
		return fmt.Errorf("dag: edge target %d not in graph", to)
	}
	for _, s := range g.succ[from] {
		if s == to {
			return fmt.Errorf("dag: duplicate edge %d->%d", from, to)
		}
	}
	g.succ[from] = append(g.succ[from], to)
	g.pred[to] = append(g.pred[to], from)
	g.edges++
	return nil
}

// HasEdge reports whether the edge from → to exists.
func (g *Graph) HasEdge(from, to NodeID) bool {
	for _, s := range g.succ[from] {
		if s == to {
			return true
		}
	}
	return false
}

// Node returns the vertex with the given id, or nil.
func (g *Graph) Node(id NodeID) *Node { return g.nodes[id] }

// Size returns the number of task vertices — the paper's "job size".
func (g *Graph) Size() int { return len(g.nodes) }

// NumEdges returns the number of dependency edges.
func (g *Graph) NumEdges() int { return g.edges }

// NodeIDs returns all vertex ids in increasing order.
func (g *Graph) NodeIDs() []NodeID {
	ids := make([]NodeID, 0, len(g.nodes))
	for id := range g.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Succ returns a copy of the successors of id in increasing order.
func (g *Graph) Succ(id NodeID) []NodeID { return sortedCopy(g.succ[id]) }

// Pred returns a copy of the predecessors of id in increasing order.
func (g *Graph) Pred(id NodeID) []NodeID { return sortedCopy(g.pred[id]) }

// InDegree returns the number of dependencies of id.
func (g *Graph) InDegree(id NodeID) int { return len(g.pred[id]) }

// OutDegree returns the number of dependents of id.
func (g *Graph) OutDegree(id NodeID) int { return len(g.succ[id]) }

// Sources returns vertices with in-degree zero (the paper's "input
// vertices") in increasing order.
func (g *Graph) Sources() []NodeID {
	var out []NodeID
	for id := range g.nodes {
		if len(g.pred[id]) == 0 {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Sinks returns vertices with out-degree zero (terminal tasks) in
// increasing order.
func (g *Graph) Sinks() []NodeID {
	var out []NodeID
	for id := range g.nodes {
		if len(g.succ[id]) == 0 {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := New(g.JobID)
	for id, n := range g.nodes {
		copied := *n
		c.nodes[id] = &copied
	}
	for id, ss := range g.succ {
		c.succ[id] = append([]NodeID(nil), ss...)
	}
	for id, ps := range g.pred {
		c.pred[id] = append([]NodeID(nil), ps...)
	}
	c.edges = g.edges
	return c
}

// Validate checks structural invariants: every edge endpoint exists,
// predecessor/successor lists agree, and the graph is acyclic.
func (g *Graph) Validate() error {
	for from, ss := range g.succ {
		if _, ok := g.nodes[from]; !ok && len(ss) > 0 {
			return fmt.Errorf("dag: job %s: edges from unknown node %d", g.JobID, from)
		}
		for _, to := range ss {
			if _, ok := g.nodes[to]; !ok {
				return fmt.Errorf("dag: job %s: edge %d->%d to unknown node", g.JobID, from, to)
			}
		}
	}
	if _, err := g.TopoSort(); err != nil {
		return err
	}
	return nil
}

// TopoSort returns a topological order of the vertices (Kahn's
// algorithm, ties broken by ascending id for determinism), or an error
// naming the job when a cycle exists.
func (g *Graph) TopoSort() ([]NodeID, error) {
	indeg := make(map[NodeID]int, len(g.nodes))
	for id := range g.nodes {
		indeg[id] = len(g.pred[id])
	}
	frontier := make([]NodeID, 0, len(g.nodes))
	for id, d := range indeg {
		if d == 0 {
			frontier = append(frontier, id)
		}
	}
	sort.Slice(frontier, func(i, j int) bool { return frontier[i] < frontier[j] })

	order := make([]NodeID, 0, len(g.nodes))
	for len(frontier) > 0 {
		// Pop the smallest id to keep the order deterministic.
		id := frontier[0]
		frontier = frontier[1:]
		order = append(order, id)
		released := make([]NodeID, 0, len(g.succ[id]))
		for _, s := range g.succ[id] {
			indeg[s]--
			if indeg[s] == 0 {
				released = append(released, s)
			}
		}
		sort.Slice(released, func(i, j int) bool { return released[i] < released[j] })
		frontier = mergeSorted(frontier, released)
	}
	if len(order) != len(g.nodes) {
		return nil, fmt.Errorf("dag: job %s contains a dependency cycle", g.JobID)
	}
	return order, nil
}

// Reachable returns the set of vertices reachable from id by following
// dependency edges forward (id itself excluded).
func (g *Graph) Reachable(id NodeID) map[NodeID]bool {
	out := make(map[NodeID]bool)
	stack := append([]NodeID(nil), g.succ[id]...)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if out[v] {
			continue
		}
		out[v] = true
		stack = append(stack, g.succ[v]...)
	}
	return out
}

func sortedCopy(xs []NodeID) []NodeID {
	out := append([]NodeID(nil), xs...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// mergeSorted merges two ascending NodeID slices into one.
func mergeSorted(a, b []NodeID) []NodeID {
	if len(b) == 0 {
		return a
	}
	out := make([]NodeID, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
