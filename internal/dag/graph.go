// Package dag implements the job-DAG representation at the heart of the
// paper: each batch job is a directed acyclic graph whose vertices are
// tasks (labeled with their framework role — Map, Reduce, Join) and whose
// edges are start-after dependencies decoded from task names.
//
// The package provides construction from parsed task names, structural
// validation, and the topological metrics the paper characterizes:
// critical path (depth), level widths (parallelism), degree statistics
// and a canonical structural signature used to detect recurring shapes.
//
// Storage is a compact CSR (compressed sparse row) layout: one flat
// []Node plus int32 offset+index arrays for successors and predecessors,
// built once from the inserted edge list and rebuilt lazily after any
// mutation. Algorithms address vertices by *position* — the index of a
// vertex in ascending-NodeID order — which keeps every traversal a walk
// over flat slices with no per-vertex map or sort work. The historical
// map-era API (NodeIDs, Succ, Pred, ...) is preserved as thin accessors
// over the CSR arrays so callers migrate incrementally.
package dag

import (
	"fmt"
	"slices"

	"jobgraph/internal/taskname"
)

// NodeID identifies a task within one job graph. IDs follow the trace's
// 1-based numbering.
type NodeID int

// Node is one task vertex with the attributes the paper attaches to
// running tasks (§IV-A): instance count, duration and planned resources.
type Node struct {
	ID        NodeID
	Type      taskname.Type
	Duration  float64 // seconds, end-to-end for the task
	Instances int
	PlanCPU   float64 // normalized cores requested
	PlanMem   float64 // normalized memory requested
}

// Graph is a directed acyclic graph for a single batch job.
//
// The zero value is not usable; call New.
type Graph struct {
	JobID string

	// nodes holds vertices in insertion order; pos maps id → insertion
	// index. Node attribute storage never moves, so *Node pointers stay
	// valid across CSR rebuilds (but not across AddNode, which may grow
	// the backing array).
	nodes []Node
	pos   map[NodeID]int32

	// edgeFrom/edgeTo record edges as insertion-index endpoint pairs in
	// insertion order; edgeSet detects duplicates and answers HasEdge in
	// O(1). The CSR arrays are derived from this list.
	edgeFrom, edgeTo []int32
	edgeSet          map[uint64]struct{}

	// Lazily built CSR view, invalidated by AddNode/AddEdge. byID lists
	// insertion indexes in ascending-ID order (position p → insertion
	// index); rank is its inverse. succOff/predOff are the n+1 CSR row
	// offsets per position; succAdj/predAdj hold neighbor positions,
	// ascending within each row (ascending position == ascending ID).
	built            bool
	byID, rank       []int32
	succOff, predOff []int32
	succAdj, predAdj []int32
}

// New returns an empty graph for the given job.
func New(jobID string) *Graph {
	return &Graph{JobID: jobID, pos: make(map[NodeID]int32)}
}

// AddNode inserts a task vertex. Adding a duplicate ID is an error: task
// ids are unique within a job in the trace, so a duplicate means the
// caller is mixing jobs.
func (g *Graph) AddNode(n Node) error {
	if n.ID <= 0 {
		return fmt.Errorf("dag: node id %d must be positive", n.ID)
	}
	if _, ok := g.pos[n.ID]; ok {
		return fmt.Errorf("dag: duplicate node %d in job %s", n.ID, g.JobID)
	}
	g.pos[n.ID] = int32(len(g.nodes))
	g.nodes = append(g.nodes, n)
	g.built = false
	return nil
}

// edgeKey packs an (from, to) insertion-index pair into one map key.
func edgeKey(fi, ti int32) uint64 {
	return uint64(uint32(fi))<<32 | uint64(uint32(ti))
}

// AddEdge inserts a dependency edge from → to ("to starts after from").
// Both endpoints must exist; self-loops and duplicate edges are errors.
// Cycle freedom is checked globally by Validate, not per edge, so bulk
// construction stays O(V+E).
func (g *Graph) AddEdge(from, to NodeID) error {
	if from == to {
		return fmt.Errorf("dag: self-loop on node %d", from)
	}
	fi, ok := g.pos[from]
	if !ok {
		return fmt.Errorf("dag: edge source %d not in graph", from)
	}
	ti, ok := g.pos[to]
	if !ok {
		return fmt.Errorf("dag: edge target %d not in graph", to)
	}
	key := edgeKey(fi, ti)
	if g.edgeSet == nil {
		g.edgeSet = make(map[uint64]struct{})
	}
	if _, dup := g.edgeSet[key]; dup {
		return fmt.Errorf("dag: duplicate edge %d->%d", from, to)
	}
	g.edgeSet[key] = struct{}{}
	g.edgeFrom = append(g.edgeFrom, fi)
	g.edgeTo = append(g.edgeTo, ti)
	g.built = false
	return nil
}

// HasEdge reports whether the edge from → to exists.
func (g *Graph) HasEdge(from, to NodeID) bool {
	fi, ok := g.pos[from]
	if !ok {
		return false
	}
	ti, ok := g.pos[to]
	if !ok {
		return false
	}
	_, ok = g.edgeSet[edgeKey(fi, ti)]
	return ok
}

// Node returns the vertex with the given id, or nil. The pointer aliases
// the graph's flat node storage: attribute writes through it are seen by
// the graph, and it is invalidated by a subsequent AddNode.
func (g *Graph) Node(id NodeID) *Node {
	i, ok := g.pos[id]
	if !ok {
		return nil
	}
	return &g.nodes[i]
}

// Size returns the number of task vertices — the paper's "job size".
func (g *Graph) Size() int { return len(g.nodes) }

// NumEdges returns the number of dependency edges.
func (g *Graph) NumEdges() int { return len(g.edgeFrom) }

// ensureBuilt (re)derives the CSR arrays from the node and edge lists.
// Cost is O(V log V + E); every mutation invalidates, every traversal
// entry point calls it.
func (g *Graph) ensureBuilt() {
	if g.built {
		return
	}
	n := len(g.nodes)
	g.byID = resizeInt32(g.byID, n)
	for i := range g.byID {
		g.byID[i] = int32(i)
	}
	slices.SortFunc(g.byID, func(a, b int32) int {
		// IDs are unique, so this never compares equal entries.
		if g.nodes[a].ID < g.nodes[b].ID {
			return -1
		}
		return 1
	})
	g.rank = resizeInt32(g.rank, n)
	for p, ai := range g.byID {
		g.rank[ai] = int32(p)
	}

	e := len(g.edgeFrom)
	g.succOff = zeroInt32(resizeInt32(g.succOff, n+1))
	g.predOff = zeroInt32(resizeInt32(g.predOff, n+1))
	for i := 0; i < e; i++ {
		g.succOff[g.rank[g.edgeFrom[i]]+1]++
		g.predOff[g.rank[g.edgeTo[i]]+1]++
	}
	for p := 0; p < n; p++ {
		g.succOff[p+1] += g.succOff[p]
		g.predOff[p+1] += g.predOff[p]
	}
	g.succAdj = resizeInt32(g.succAdj, e)
	g.predAdj = resizeInt32(g.predAdj, e)
	// Fill rows using the offsets as cursors, then rewind the cursors by
	// sliding them one slot: after the fill, succOff[p] holds the end of
	// row p, which is the start of row p+1.
	for i := 0; i < e; i++ {
		sp, tp := g.rank[g.edgeFrom[i]], g.rank[g.edgeTo[i]]
		g.succAdj[g.succOff[sp]] = tp
		g.succOff[sp]++
		g.predAdj[g.predOff[tp]] = sp
		g.predOff[tp]++
	}
	for p := n; p > 0; p-- {
		g.succOff[p] = g.succOff[p-1]
		g.predOff[p] = g.predOff[p-1]
	}
	g.succOff[0], g.predOff[0] = 0, 0
	for p := 0; p < n; p++ {
		slices.Sort(g.succAdj[g.succOff[p]:g.succOff[p+1]])
		slices.Sort(g.predAdj[g.predOff[p]:g.predOff[p+1]])
	}
	g.built = true
}

// resizeInt32 returns s with length n, reusing capacity when possible.
func resizeInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// zeroInt32 clears s in place and returns it.
func zeroInt32(s []int32) []int32 {
	for i := range s {
		s[i] = 0
	}
	return s
}

// --- Position API ---------------------------------------------------
//
// A position is a vertex's index in ascending-NodeID order, 0-based.
// Positions are stable between mutations, and every adjacency slice the
// CSR hands out lists neighbor positions in ascending order, so
// position-order iteration is ID-order iteration. This is the zero-
// allocation surface the hot paths (WL refinement, conflation, metrics)
// run on; the NodeID-keyed accessors below are derived from it.

// NumNodes returns the vertex count (same as Size; named for symmetry
// with the position API).
func (g *Graph) NumNodes() int { return len(g.nodes) }

// PosOf returns the position of a vertex id, or -1 when absent.
func (g *Graph) PosOf(id NodeID) int {
	g.ensureBuilt()
	i, ok := g.pos[id]
	if !ok {
		return -1
	}
	return int(g.rank[i])
}

// IDAt returns the vertex id at a position.
func (g *Graph) IDAt(p int) NodeID {
	g.ensureBuilt()
	return g.nodes[g.byID[p]].ID
}

// NodeAt returns the vertex at a position. The pointer aliases graph
// storage exactly as Node does.
func (g *Graph) NodeAt(p int) *Node {
	g.ensureBuilt()
	return &g.nodes[g.byID[p]]
}

// SuccPos returns the successor positions of position p, ascending. The
// slice is a view into the CSR arrays: read-only, invalidated by the
// next mutation.
func (g *Graph) SuccPos(p int) []int32 {
	g.ensureBuilt()
	return g.succAdj[g.succOff[p]:g.succOff[p+1]]
}

// PredPos returns the predecessor positions of position p, ascending,
// under the same view contract as SuccPos.
func (g *Graph) PredPos(p int) []int32 {
	g.ensureBuilt()
	return g.predAdj[g.predOff[p]:g.predOff[p+1]]
}

// --- NodeID-keyed accessors (map-era API) ---------------------------

// NodeIDs returns all vertex ids in increasing order.
func (g *Graph) NodeIDs() []NodeID {
	g.ensureBuilt()
	ids := make([]NodeID, len(g.nodes))
	for p, ai := range g.byID {
		ids[p] = g.nodes[ai].ID
	}
	return ids
}

// Succ returns a copy of the successors of id in increasing order.
func (g *Graph) Succ(id NodeID) []NodeID { return g.neighborIDs(id, true) }

// Pred returns a copy of the predecessors of id in increasing order.
func (g *Graph) Pred(id NodeID) []NodeID { return g.neighborIDs(id, false) }

func (g *Graph) neighborIDs(id NodeID, succ bool) []NodeID {
	p := g.PosOf(id)
	if p < 0 {
		return nil
	}
	var adj []int32
	if succ {
		adj = g.SuccPos(p)
	} else {
		adj = g.PredPos(p)
	}
	if len(adj) == 0 {
		return nil
	}
	out := make([]NodeID, len(adj))
	for i, q := range adj {
		out[i] = g.nodes[g.byID[q]].ID
	}
	return out
}

// InDegree returns the number of dependencies of id.
func (g *Graph) InDegree(id NodeID) int {
	p := g.PosOf(id)
	if p < 0 {
		return 0
	}
	return int(g.predOff[p+1] - g.predOff[p])
}

// OutDegree returns the number of dependents of id.
func (g *Graph) OutDegree(id NodeID) int {
	p := g.PosOf(id)
	if p < 0 {
		return 0
	}
	return int(g.succOff[p+1] - g.succOff[p])
}

// Sources returns vertices with in-degree zero (the paper's "input
// vertices") in increasing order.
func (g *Graph) Sources() []NodeID {
	g.ensureBuilt()
	var out []NodeID
	for p := 0; p < len(g.nodes); p++ {
		if g.predOff[p+1] == g.predOff[p] {
			out = append(out, g.nodes[g.byID[p]].ID)
		}
	}
	return out
}

// Sinks returns vertices with out-degree zero (terminal tasks) in
// increasing order.
func (g *Graph) Sinks() []NodeID {
	g.ensureBuilt()
	var out []NodeID
	for p := 0; p < len(g.nodes); p++ {
		if g.succOff[p+1] == g.succOff[p] {
			out = append(out, g.nodes[g.byID[p]].ID)
		}
	}
	return out
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		JobID:    g.JobID,
		nodes:    slices.Clone(g.nodes),
		pos:      make(map[NodeID]int32, len(g.pos)),
		edgeFrom: slices.Clone(g.edgeFrom),
		edgeTo:   slices.Clone(g.edgeTo),
	}
	for id, i := range g.pos {
		c.pos[id] = i
	}
	if g.edgeSet != nil {
		c.edgeSet = make(map[uint64]struct{}, len(g.edgeSet))
		for k := range g.edgeSet {
			c.edgeSet[k] = struct{}{}
		}
	}
	return c
}

// Validate checks structural invariants. Edge endpoints are enforced at
// insertion by AddEdge, so this reduces to the global acyclicity check.
func (g *Graph) Validate() error {
	if _, err := g.topoPositions(nil); err != nil {
		return err
	}
	return nil
}

// TopoSort returns a topological order of the vertices (Kahn's
// algorithm, ties broken by ascending id for determinism), or an error
// naming the job when a cycle exists.
func (g *Graph) TopoSort() ([]NodeID, error) {
	order, err := g.topoPositions(nil)
	if err != nil {
		return nil, err
	}
	out := make([]NodeID, len(order))
	for i, p := range order {
		out[i] = g.nodes[g.byID[p]].ID
	}
	return out, nil
}

// topoPositions runs Kahn's algorithm over the CSR arrays, emitting
// positions. The ready frontier is a binary min-heap of positions, so
// the smallest pending id is always emitted first — the same
// deterministic tie-break the map-era implementation used. buf, when
// non-nil and large enough, backs the returned order.
func (g *Graph) topoPositions(buf []int32) ([]int32, error) {
	g.ensureBuilt()
	n := len(g.nodes)
	if cap(buf) < n {
		buf = make([]int32, n)
	}
	order := buf[:0]
	indeg := make([]int32, n)
	heap := make([]int32, 0, n)
	for p := 0; p < n; p++ {
		indeg[p] = g.predOff[p+1] - g.predOff[p]
		if indeg[p] == 0 {
			heap = heapPushInt32(heap, int32(p))
		}
	}
	for len(heap) > 0 {
		var p int32
		heap, p = heapPopInt32(heap)
		order = append(order, p)
		for _, s := range g.succAdj[g.succOff[p]:g.succOff[p+1]] {
			indeg[s]--
			if indeg[s] == 0 {
				heap = heapPushInt32(heap, s)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("dag: job %s contains a dependency cycle", g.JobID)
	}
	return order, nil
}

// heapPushInt32 / heapPopInt32 implement a plain binary min-heap on a
// slice — the frontier of topoPositions — without container/heap's
// interface boxing.
func heapPushInt32(h []int32, x int32) []int32 {
	h = append(h, x)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent] <= h[i] {
			break
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
	return h
}

func heapPopInt32(h []int32) ([]int32, int32) {
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h) && h[l] < h[small] {
			small = l
		}
		if r < len(h) && h[r] < h[small] {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	return h, top
}

// Reachable returns the set of vertices reachable from id by following
// dependency edges forward (id itself excluded).
func (g *Graph) Reachable(id NodeID) map[NodeID]bool {
	out := make(map[NodeID]bool)
	p := g.PosOf(id)
	if p < 0 {
		return out
	}
	seen := make([]bool, len(g.nodes))
	stack := append([]int32(nil), g.SuccPos(p)...)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[v] {
			continue
		}
		seen[v] = true
		out[g.nodes[g.byID[v]].ID] = true
		stack = append(stack, g.succAdj[g.succOff[v]:g.succOff[v+1]]...)
	}
	return out
}
