package dag

import (
	"math/rand"
	"testing"
	"testing/quick"

	"jobgraph/internal/taskname"
)

// twoIslands builds 1->2->3 and 10->11.
func twoIslands(t testing.TB) *Graph {
	t.Helper()
	g := New("islands")
	for _, id := range []NodeID{1, 2, 3, 10, 11} {
		if err := g.AddNode(Node{ID: id, Type: taskname.TypeMap}); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range [][2]NodeID{{1, 2}, {2, 3}, {10, 11}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestComponents(t *testing.T) {
	comps := twoIslands(t).Components()
	if len(comps) != 2 {
		t.Fatalf("components = %v", comps)
	}
	if len(comps[0]) != 3 || comps[0][0] != 1 || comps[0][2] != 3 {
		t.Fatalf("first component = %v", comps[0])
	}
	if len(comps[1]) != 2 || comps[1][0] != 10 {
		t.Fatalf("second component = %v", comps[1])
	}
}

func TestComponentsConnectedAndEmpty(t *testing.T) {
	if got := New("e").Components(); got != nil {
		t.Fatalf("empty graph components = %v", got)
	}
	comps := paperJob(t).Components()
	if len(comps) != 1 || len(comps[0]) != 5 {
		t.Fatalf("connected graph components = %v", comps)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := paperJob(t)
	sub, err := g.InducedSubgraph([]NodeID{1, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Size() != 3 {
		t.Fatalf("size = %d", sub.Size())
	}
	// Kept edges: 1->2, 2->5, 1->5. Dropped: everything touching 3, 4.
	if !sub.HasEdge(1, 2) || !sub.HasEdge(2, 5) || !sub.HasEdge(1, 5) {
		t.Fatal("missing kept edges")
	}
	if sub.NumEdges() != 3 {
		t.Fatalf("edges = %d, want 3", sub.NumEdges())
	}
	// Node attributes preserved.
	if sub.Node(1).Duration != g.Node(1).Duration {
		t.Fatal("attributes lost")
	}
	if _, err := g.InducedSubgraph([]NodeID{1, 99}); err == nil {
		t.Fatal("missing node accepted")
	}
	// Duplicate ids are tolerated.
	dup, err := g.InducedSubgraph([]NodeID{1, 1, 2})
	if err != nil || dup.Size() != 2 {
		t.Fatalf("duplicate ids: %v, size %d", err, dup.Size())
	}
}

func TestLargestComponent(t *testing.T) {
	lc, err := twoIslands(t).LargestComponent()
	if err != nil {
		t.Fatal(err)
	}
	if lc.Size() != 3 || !lc.HasEdge(1, 2) {
		t.Fatalf("largest component: %s", lc.Summary())
	}
	empty, err := New("e").LargestComponent()
	if err != nil || empty.Size() != 0 {
		t.Fatalf("empty largest component: %v", err)
	}
}

func TestComponentsPartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 1+rng.Intn(20))
		// Randomly delete edges to fragment the graph: rebuild with a
		// subset of edges.
		frag := New("frag")
		for _, id := range g.NodeIDs() {
			_ = frag.AddNode(*g.Node(id))
		}
		for _, from := range g.NodeIDs() {
			for _, to := range g.Succ(from) {
				if rng.Float64() < 0.5 {
					_ = frag.AddEdge(from, to)
				}
			}
		}
		comps := frag.Components()
		// Components partition the vertex set.
		seen := make(map[NodeID]bool)
		total := 0
		for _, c := range comps {
			total += len(c)
			for _, id := range c {
				if seen[id] {
					return false
				}
				seen[id] = true
			}
		}
		if total != frag.Size() {
			return false
		}
		// Each component's induced subgraph is connected and its sizes
		// sum to the whole.
		for _, c := range comps {
			sub, err := frag.InducedSubgraph(c)
			if err != nil || !sub.IsConnected() {
				return false
			}
		}
		// Single component iff IsConnected.
		return (len(comps) == 1) == frag.IsConnected() || frag.Size() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
