package dag

// Gob support for Graph, required by the engine's artifact cache: gob
// cannot see the graph's unexported adjacency, so the codec delegates
// to the deterministic JSON wire format, which already validates on
// decode. The encoded form is the canonical node/edge listing, so a
// decoded graph is structurally identical to the original (same nodes,
// same edges, same attributes) and every downstream metric — depth,
// width, WL refinement, conflation — computes the same values on it.

// GobEncode implements gob.GobEncoder.
func (g *Graph) GobEncode() ([]byte, error) { return g.MarshalJSON() }

// GobDecode implements gob.GobDecoder; the receiver is reset.
func (g *Graph) GobDecode(data []byte) error { return g.UnmarshalJSON(data) }
