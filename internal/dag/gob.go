package dag

import (
	"encoding/binary"
	"fmt"
	"math"

	"jobgraph/internal/taskname"
)

// Gob support for Graph, required by the engine's artifact cache. The
// wire form is a compact binary CSR listing — magic header, delta-coded
// node ids, fixed64 attributes, then successor rows in position order —
// a fraction of the size of the JSON delegation the map-era codec used
// and decodable without a JSON parse. Decoded graphs are validated, so
// a corrupt artifact surfaces as a cache miss, not a bad graph. This
// format change is why the engine cache key schema is
// "jobgraph-engine/v2": v1 artifacts must miss rather than decode
// wrongly.

// gobMagic versions the binary wire form.
var gobMagic = [4]byte{'J', 'G', 'D', '2'}

// GobEncode implements gob.GobEncoder.
func (g *Graph) GobEncode() ([]byte, error) {
	g.ensureBuilt()
	n := g.NumNodes()
	buf := make([]byte, 0, 4+len(g.JobID)+8+n*32+g.NumEdges()*4)
	buf = append(buf, gobMagic[:]...)
	buf = binary.AppendUvarint(buf, uint64(len(g.JobID)))
	buf = append(buf, g.JobID...)
	buf = binary.AppendUvarint(buf, uint64(n))
	prev := uint64(0)
	for p := 0; p < n; p++ {
		node := &g.nodes[g.byID[p]]
		id := uint64(node.ID)
		buf = binary.AppendUvarint(buf, id-prev) // ids ascend; delta ≥ 1
		prev = id
		buf = append(buf, byte(node.Type))
		buf = binary.AppendUvarint(buf, uint64(node.Instances))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(node.Duration))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(node.PlanCPU))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(node.PlanMem))
	}
	for p := 0; p < n; p++ {
		row := g.SuccPos(p)
		buf = binary.AppendUvarint(buf, uint64(len(row)))
		for _, q := range row {
			buf = binary.AppendUvarint(buf, uint64(q))
		}
	}
	return buf, nil
}

// GobDecode implements gob.GobDecoder; the receiver is reset. The
// decoded graph is re-validated like any other construction path.
func (g *Graph) GobDecode(data []byte) error {
	r := gobReader{data: data}
	var magic [4]byte
	if err := r.bytes(magic[:]); err != nil || magic != gobMagic {
		return fmt.Errorf("dag: bad graph wire header")
	}
	jobLen, err := r.uvarint()
	if err != nil {
		return err
	}
	if jobLen > uint64(len(data)) {
		return fmt.Errorf("dag: truncated graph wire form")
	}
	jobID := make([]byte, jobLen)
	if err := r.bytes(jobID); err != nil {
		return err
	}
	n, err := r.uvarint()
	if err != nil {
		return err
	}
	// Each node costs ≥ 27 wire bytes; an n beyond that bound means a
	// corrupt length, and rejecting it here avoids a huge allocation.
	if n > uint64(len(data))/27+1 {
		return fmt.Errorf("dag: graph wire form claims %d nodes in %d bytes", n, len(data))
	}
	fresh := New(string(jobID))
	ids := make([]NodeID, n)
	prev := uint64(0)
	for p := uint64(0); p < n; p++ {
		delta, err := r.uvarint()
		if err != nil {
			return err
		}
		prev += delta
		typ, err := r.byte()
		if err != nil {
			return err
		}
		inst, err := r.uvarint()
		if err != nil {
			return err
		}
		var f [3]float64
		for i := range f {
			bits, err := r.fixed64()
			if err != nil {
				return err
			}
			f[i] = math.Float64frombits(bits)
		}
		ids[p] = NodeID(prev)
		if err := fresh.AddNode(Node{
			ID:        ids[p],
			Type:      taskname.Type(typ),
			Duration:  f[0],
			Instances: int(inst),
			PlanCPU:   f[1],
			PlanMem:   f[2],
		}); err != nil {
			return err
		}
	}
	for p := uint64(0); p < n; p++ {
		rowLen, err := r.uvarint()
		if err != nil {
			return err
		}
		for j := uint64(0); j < rowLen; j++ {
			q, err := r.uvarint()
			if err != nil {
				return err
			}
			if q >= n {
				return fmt.Errorf("dag: graph wire form references position %d of %d", q, n)
			}
			if err := fresh.AddEdge(ids[p], ids[q]); err != nil {
				return err
			}
		}
	}
	if err := fresh.Validate(); err != nil {
		return err
	}
	*g = *fresh
	return nil
}

// gobReader is a minimal cursor over the wire bytes with explicit
// truncation errors.
type gobReader struct {
	data []byte
	off  int
}

func (r *gobReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("dag: truncated graph wire form")
	}
	r.off += n
	return v, nil
}

func (r *gobReader) byte() (byte, error) {
	if r.off >= len(r.data) {
		return 0, fmt.Errorf("dag: truncated graph wire form")
	}
	b := r.data[r.off]
	r.off++
	return b, nil
}

func (r *gobReader) fixed64() (uint64, error) {
	if r.off+8 > len(r.data) {
		return 0, fmt.Errorf("dag: truncated graph wire form")
	}
	v := binary.LittleEndian.Uint64(r.data[r.off : r.off+8])
	r.off += 8
	return v, nil
}

func (r *gobReader) bytes(dst []byte) error {
	if r.off+len(dst) > len(r.data) {
		return fmt.Errorf("dag: truncated graph wire form")
	}
	copy(dst, r.data[r.off:r.off+len(dst)])
	r.off += len(dst)
	return nil
}
