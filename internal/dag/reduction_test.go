package dag

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTransitiveReductionPaperExample(t *testing.T) {
	// R5_4_3_2_1 over-specifies: with 1->2 and 3->4 present, edges
	// 1->5 and 3->5 are implied by 2->5 and 4->5.
	g := paperJob(t)
	r, err := g.TransitiveReduction()
	if err != nil {
		t.Fatal(err)
	}
	if r.NumEdges() != 4 {
		t.Fatalf("reduced edges = %d, want 4", r.NumEdges())
	}
	for _, e := range [][2]NodeID{{1, 2}, {3, 4}, {2, 5}, {4, 5}} {
		if !r.HasEdge(e[0], e[1]) {
			t.Fatalf("essential edge %d->%d removed", e[0], e[1])
		}
	}
	for _, e := range [][2]NodeID{{1, 5}, {3, 5}} {
		if r.HasEdge(e[0], e[1]) {
			t.Fatalf("redundant edge %d->%d kept", e[0], e[1])
		}
	}
	n, err := g.RedundantEdges()
	if err != nil || n != 2 {
		t.Fatalf("redundant = %d, %v; want 2", n, err)
	}
}

func TestTransitiveReductionChainUnchanged(t *testing.T) {
	g := chain(t, 6)
	r, err := g.TransitiveReduction()
	if err != nil {
		t.Fatal(err)
	}
	if r.NumEdges() != g.NumEdges() {
		t.Fatal("chain has no redundant edges")
	}
}

func TestTransitiveReductionEmptyAndSingle(t *testing.T) {
	if r, err := New("e").TransitiveReduction(); err != nil || r.Size() != 0 {
		t.Fatalf("empty reduction: %v", err)
	}
}

func TestTransitiveReductionCyclicRejected(t *testing.T) {
	g := New("c")
	for i := 1; i <= 2; i++ {
		if err := g.AddNode(Node{ID: NodeID(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(2, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := g.TransitiveReduction(); err == nil {
		t.Fatal("cyclic graph accepted")
	}
}

// reachSet computes the full reachability relation of a graph.
func reachSet(g *Graph) map[[2]NodeID]bool {
	out := make(map[[2]NodeID]bool)
	for _, u := range g.NodeIDs() {
		for v := range g.Reachable(u) {
			out[[2]NodeID{u, v}] = true
		}
	}
	return out
}

func TestTransitiveReductionPreservesReachabilityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 1+rng.Intn(15))
		r, err := g.TransitiveReduction()
		if err != nil {
			return false
		}
		// Same reachability, no more edges, still a valid DAG.
		if r.NumEdges() > g.NumEdges() {
			return false
		}
		if err := r.Validate(); err != nil {
			return false
		}
		a, b := reachSet(g), reachSet(r)
		if len(a) != len(b) {
			return false
		}
		for k := range a {
			if !b[k] {
				return false
			}
		}
		// Idempotent: reducing again removes nothing.
		rr, err := r.TransitiveReduction()
		if err != nil {
			return false
		}
		return rr.NumEdges() == r.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTransitiveReductionPreservesMetricsProperty(t *testing.T) {
	// Depth (longest path) is invariant under transitive reduction.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 1+rng.Intn(12))
		r, err := g.TransitiveReduction()
		if err != nil {
			return false
		}
		d0, err1 := g.Depth()
		d1, err2 := r.Depth()
		return err1 == nil && err2 == nil && d0 == d1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
