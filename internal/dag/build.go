package dag

import (
	"fmt"

	"jobgraph/internal/taskname"
)

// TaskSpec is the per-task input to the DAG builder: a raw trace task
// name plus the runtime attributes carried into the node.
type TaskSpec struct {
	Name string
	// Sym is the interned symbol for Name when the row passed through a
	// taskname.Arena at ingest; zero means "not interned". With an arena
	// on BuildOptions, a non-zero symbol resolves to a cached parse so
	// the name is decoded once per distinct name instead of once per
	// task occurrence.
	Sym       taskname.Symbol
	Duration  float64
	Instances int
	PlanCPU   float64
	PlanMem   float64
}

// BuildOptions controls how FromTasks treats imperfect trace data.
type BuildOptions struct {
	// SkipMissingDeps drops dependency references whose target task is
	// absent from the job (the raw trace contains a small number of
	// these, typically jobs truncated at the collection boundary).
	// When false, a missing target is an error.
	SkipMissingDeps bool
	// Arena resolves TaskSpec.Sym to cached parses. nil (or a zero Sym)
	// falls back to parsing TaskSpec.Name.
	Arena *taskname.Arena
}

// BuildResult reports what FromTasks did with the input.
type BuildResult struct {
	Graph *Graph
	// Independent counts tasks whose names do not follow the DAG
	// grammar; they are excluded from the graph. A job made entirely of
	// independent tasks has Graph.Size() == 0.
	Independent int
	// DroppedDeps counts dependency references removed because the
	// target task was missing (only with SkipMissingDeps).
	DroppedDeps int
}

// FromTasks builds a job DAG from trace task records, decoding the
// dependency structure from task names exactly as §IV-A describes. The
// returned graph is validated (acyclic, consistent) before being handed
// back.
func FromTasks(jobID string, tasks []TaskSpec, opt BuildOptions) (BuildResult, error) {
	res := BuildResult{Graph: New(jobID)}
	parsed := make([]taskname.Parsed, 0, len(tasks))
	for _, t := range tasks {
		var p taskname.Parsed
		var err error
		var cached bool
		if opt.Arena != nil && t.Sym != 0 {
			p, err, cached = opt.Arena.ParseNamed(t.Sym, t.Name)
		}
		if !cached {
			p, err = taskname.Parse(t.Name)
		}
		if err != nil {
			return res, fmt.Errorf("dag: job %s: %w", jobID, err)
		}
		if p.Independent {
			res.Independent++
			continue
		}
		if err := res.Graph.AddNode(Node{
			ID:        NodeID(p.ID),
			Type:      p.Type,
			Duration:  t.Duration,
			Instances: t.Instances,
			PlanCPU:   t.PlanCPU,
			PlanMem:   t.PlanMem,
		}); err != nil {
			return res, err
		}
		parsed = append(parsed, p)
	}
	for _, p := range parsed {
		for _, d := range p.Deps {
			from, to := NodeID(d), NodeID(p.ID)
			if res.Graph.Node(from) == nil {
				if opt.SkipMissingDeps {
					res.DroppedDeps++
					continue
				}
				return res, fmt.Errorf("dag: job %s: task %s depends on missing task %d",
					jobID, p.Raw, d)
			}
			if err := res.Graph.AddEdge(from, to); err != nil {
				return res, err
			}
		}
	}
	if err := res.Graph.Validate(); err != nil {
		return res, err
	}
	return res, nil
}
