package dag

import (
	"strings"
	"testing"

	"jobgraph/internal/taskname"
)

// paperJob builds the exact example DAG from §IV-A (job 1001388):
// tasks M1, M3, R2_1, R4_3, R5_4_3_2_1.
func paperJob(t testing.TB) *Graph {
	t.Helper()
	res, err := FromTasks("1001388", []TaskSpec{
		{Name: "M1", Duration: 10, Instances: 4},
		{Name: "M3", Duration: 20, Instances: 2},
		{Name: "R2_1", Duration: 5, Instances: 1},
		{Name: "R4_3", Duration: 8, Instances: 1},
		{Name: "R5_4_3_2_1", Duration: 3, Instances: 1},
	}, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return res.Graph
}

// chain builds a straight chain M1 -> R2 -> R3 -> ... of the given size.
func chain(t testing.TB, size int) *Graph {
	t.Helper()
	g := New("chain")
	for i := 1; i <= size; i++ {
		typ := taskname.TypeReduce
		if i == 1 {
			typ = taskname.TypeMap
		}
		if err := g.AddNode(Node{ID: NodeID(i), Type: typ, Duration: 1}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < size; i++ {
		if err := g.AddEdge(NodeID(i), NodeID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestFromTasksPaperExample(t *testing.T) {
	g := paperJob(t)
	if g.Size() != 5 {
		t.Fatalf("size = %d, want 5", g.Size())
	}
	if g.NumEdges() != 6 {
		t.Fatalf("edges = %d, want 6", g.NumEdges())
	}
	for _, e := range [][2]NodeID{{1, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 5}, {1, 5}} {
		if !g.HasEdge(e[0], e[1]) {
			t.Fatalf("missing edge %d->%d", e[0], e[1])
		}
	}
	if g.HasEdge(2, 1) {
		t.Fatal("reverse edge present")
	}
}

func TestFromTasksIndependentCounted(t *testing.T) {
	res, err := FromTasks("j", []TaskSpec{
		{Name: "task_abc"}, {Name: "M1"}, {Name: "MergeTask"},
	}, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Independent != 2 || res.Graph.Size() != 1 {
		t.Fatalf("independent=%d size=%d", res.Independent, res.Graph.Size())
	}
}

func TestFromTasksMissingDep(t *testing.T) {
	tasks := []TaskSpec{{Name: "R2_1"}} // depends on absent task 1
	if _, err := FromTasks("j", tasks, BuildOptions{}); err == nil {
		t.Fatal("missing dependency accepted")
	}
	res, err := FromTasks("j", tasks, BuildOptions{SkipMissingDeps: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.DroppedDeps != 1 || res.Graph.NumEdges() != 0 {
		t.Fatalf("dropped=%d edges=%d", res.DroppedDeps, res.Graph.NumEdges())
	}
}

func TestFromTasksDuplicateTaskID(t *testing.T) {
	if _, err := FromTasks("j", []TaskSpec{{Name: "M1"}, {Name: "R1"}}, BuildOptions{}); err == nil {
		t.Fatal("duplicate task id accepted")
	}
}

func TestAddNodeValidation(t *testing.T) {
	g := New("j")
	if err := g.AddNode(Node{ID: 0}); err == nil {
		t.Fatal("node id 0 accepted")
	}
	if err := g.AddNode(Node{ID: -1}); err == nil {
		t.Fatal("negative node id accepted")
	}
	if err := g.AddNode(Node{ID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddNode(Node{ID: 1}); err == nil {
		t.Fatal("duplicate node accepted")
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := New("j")
	if err := g.AddNode(Node{ID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddNode(Node{ID: 2}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 1); err == nil {
		t.Fatal("self loop accepted")
	}
	if err := g.AddEdge(1, 3); err == nil {
		t.Fatal("edge to missing node accepted")
	}
	if err := g.AddEdge(3, 1); err == nil {
		t.Fatal("edge from missing node accepted")
	}
	if err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 2); err == nil {
		t.Fatal("duplicate edge accepted")
	}
}

func TestTopoSortChain(t *testing.T) {
	g := chain(t, 5)
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range order {
		if id != NodeID(i+1) {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestTopoSortDetectsCycle(t *testing.T) {
	g := New("cyclic")
	for i := 1; i <= 3; i++ {
		if err := g.AddNode(Node{ID: NodeID(i)}); err != nil {
			t.Fatal(err)
		}
	}
	mustEdge := func(a, b NodeID) {
		t.Helper()
		if err := g.AddEdge(a, b); err != nil {
			t.Fatal(err)
		}
	}
	mustEdge(1, 2)
	mustEdge(2, 3)
	mustEdge(3, 1)
	if _, err := g.TopoSort(); err == nil {
		t.Fatal("cycle not detected")
	}
	if err := g.Validate(); err == nil {
		t.Fatal("Validate missed the cycle")
	}
}

func TestTopoSortIsValidOrder(t *testing.T) {
	g := paperJob(t)
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[NodeID]int)
	for i, id := range order {
		pos[id] = i
	}
	for _, from := range g.NodeIDs() {
		for _, to := range g.Succ(from) {
			if pos[from] >= pos[to] {
				t.Fatalf("edge %d->%d violated by order %v", from, to, order)
			}
		}
	}
}

func TestSourcesSinks(t *testing.T) {
	g := paperJob(t)
	src := g.Sources()
	if len(src) != 2 || src[0] != 1 || src[1] != 3 {
		t.Fatalf("sources = %v", src)
	}
	snk := g.Sinks()
	if len(snk) != 1 || snk[0] != 5 {
		t.Fatalf("sinks = %v", snk)
	}
}

func TestReachable(t *testing.T) {
	g := paperJob(t)
	r := g.Reachable(1)
	if !r[2] || !r[5] || r[3] || r[4] || r[1] {
		t.Fatalf("reachable(1) = %v", r)
	}
	if len(g.Reachable(5)) != 0 {
		t.Fatal("sink should reach nothing")
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := paperJob(t)
	c := g.Clone()
	c.Node(1).Duration = 999
	if g.Node(1).Duration == 999 {
		t.Fatal("clone shares node storage")
	}
	if err := c.AddNode(Node{ID: 99}); err != nil {
		t.Fatal(err)
	}
	if g.Size() == c.Size() {
		t.Fatal("clone shares node map")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestIsConnected(t *testing.T) {
	if !paperJob(t).IsConnected() {
		t.Fatal("paper job is connected")
	}
	g := New("two-parts")
	for i := 1; i <= 4; i++ {
		if err := g.AddNode(Node{ID: NodeID(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(3, 4); err != nil {
		t.Fatal(err)
	}
	if g.IsConnected() {
		t.Fatal("disconnected graph reported connected")
	}
	if !New("empty").IsConnected() {
		t.Fatal("empty graph should count as connected")
	}
}

func TestSuccPredAreCopies(t *testing.T) {
	g := paperJob(t)
	s := g.Succ(1)
	s[0] = 999
	if g.Succ(1)[0] == 999 {
		t.Fatal("Succ returned internal storage")
	}
}

func TestSummaryAndASCII(t *testing.T) {
	g := paperJob(t)
	sum := g.Summary()
	for _, want := range []string{"1001388", "5 tasks", "6 edges", "depth 3", "width 2"} {
		if !strings.Contains(sum, want) {
			t.Fatalf("summary %q missing %q", sum, want)
		}
	}
	art := g.ASCII()
	if !strings.Contains(art, "L0: M1 M3") || !strings.Contains(art, "L2: R5") {
		t.Fatalf("ascii:\n%s", art)
	}
	if New("e").ASCII() != "(empty job)\n" {
		t.Fatal("empty ASCII render")
	}
}

func TestDOTDeterministic(t *testing.T) {
	g := paperJob(t)
	d1, d2 := g.DOT(), g.DOT()
	if d1 != d2 {
		t.Fatal("DOT output not deterministic")
	}
	for _, want := range []string{"t1 -> t2", "t4 -> t5", `label="M1"`, `label="R5"`} {
		if !strings.Contains(d1, want) {
			t.Fatalf("DOT missing %q:\n%s", want, d1)
		}
	}
}
