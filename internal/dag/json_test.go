package dag

import (
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestJSONRoundTrip(t *testing.T) {
	g := paperJob(t)
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	var back Graph
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.JobID != g.JobID || back.Size() != g.Size() || back.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip: %s", back.Summary())
	}
	for _, id := range g.NodeIDs() {
		a, b := g.Node(id), back.Node(id)
		if a.Type != b.Type || a.Duration != b.Duration || a.Instances != b.Instances ||
			a.PlanCPU != b.PlanCPU || a.PlanMem != b.PlanMem {
			t.Fatalf("node %d mismatch: %+v vs %+v", id, a, b)
		}
		for _, s := range g.Succ(id) {
			if !back.HasEdge(id, s) {
				t.Fatalf("missing edge %d->%d", id, s)
			}
		}
	}
}

func TestJSONDeterministic(t *testing.T) {
	g := paperJob(t)
	a, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("non-deterministic JSON")
	}
	if !strings.Contains(string(a), `"job_id":"1001388"`) {
		t.Fatalf("json: %s", a)
	}
}

func TestJSONRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 1+rng.Intn(15))
		data, err := json.Marshal(g)
		if err != nil {
			return false
		}
		var back Graph
		if err := json.Unmarshal(data, &back); err != nil {
			return false
		}
		return back.CanonicalSignature() == g.CanonicalSignature() &&
			back.Size() == g.Size() && back.NumEdges() == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestJSONRejectsInvalid(t *testing.T) {
	cases := map[string]string{
		"cycle":          `{"job_id":"j","nodes":[{"id":1,"type":"M"},{"id":2,"type":"R"}],"edges":[[1,2],[2,1]]}`,
		"self loop":      `{"job_id":"j","nodes":[{"id":1,"type":"M"}],"edges":[[1,1]]}`,
		"missing target": `{"job_id":"j","nodes":[{"id":1,"type":"M"}],"edges":[[1,2]]}`,
		"duplicate node": `{"job_id":"j","nodes":[{"id":1,"type":"M"},{"id":1,"type":"R"}],"edges":[]}`,
		"bad id":         `{"job_id":"j","nodes":[{"id":0,"type":"M"}],"edges":[]}`,
		"not json":       `{{{`,
	}
	for name, data := range cases {
		var g Graph
		if err := json.Unmarshal([]byte(data), &g); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestJSONUnknownTypeBecomesOther(t *testing.T) {
	data := `{"job_id":"j","nodes":[{"id":1,"type":"X"}],"edges":[]}`
	var g Graph
	if err := json.Unmarshal([]byte(data), &g); err != nil {
		t.Fatal(err)
	}
	if g.Node(1).Type.String() != "?" {
		t.Fatalf("type = %s", g.Node(1).Type)
	}
}

func TestJSONEmptyGraph(t *testing.T) {
	data, err := json.Marshal(New("empty"))
	if err != nil {
		t.Fatal(err)
	}
	var back Graph
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Size() != 0 || back.JobID != "empty" {
		t.Fatalf("empty round trip: %s", back.Summary())
	}
}
