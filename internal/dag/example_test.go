package dag_test

import (
	"fmt"

	"jobgraph/internal/dag"
)

func ExampleFromTasks() {
	// Build the paper's example job 1001388 from its trace task names.
	res, err := dag.FromTasks("1001388", []dag.TaskSpec{
		{Name: "M1"}, {Name: "M3"}, {Name: "R2_1"}, {Name: "R4_3"},
		{Name: "R5_4_3_2_1"},
	}, dag.BuildOptions{})
	if err != nil {
		panic(err)
	}
	g := res.Graph
	depth, _ := g.Depth()
	width, _ := g.MaxWidth()
	fmt.Printf("%d tasks, %d edges, critical path %d, max width %d\n",
		g.Size(), g.NumEdges(), depth, width)
	fmt.Print(g.ASCII())
	// Output:
	// 5 tasks, 6 edges, critical path 3, max width 2
	// L0: M1 M3
	// L1: R2 R4
	// L2: R5
}

func ExampleGraph_TransitiveReduction() {
	res, err := dag.FromTasks("1001388", []dag.TaskSpec{
		{Name: "M1"}, {Name: "M3"}, {Name: "R2_1"}, {Name: "R4_3"},
		{Name: "R5_4_3_2_1"},
	}, dag.BuildOptions{})
	if err != nil {
		panic(err)
	}
	reduced, err := res.Graph.TransitiveReduction()
	if err != nil {
		panic(err)
	}
	// R5_4_3_2_1 names all four ancestors, but two edges are implied.
	fmt.Printf("%d edges -> %d essential\n", res.Graph.NumEdges(), reduced.NumEdges())
	// Output:
	// 6 edges -> 4 essential
}
