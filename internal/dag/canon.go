package dag

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
)

// Signature is a structural fingerprint of a graph: two graphs with
// different signatures are guaranteed non-isomorphic (as labeled DAGs);
// graphs with equal signatures are isomorphic in all but adversarial
// cases (the fingerprint is a fixed-point color refinement, the same
// family of invariants the WL kernel uses).
type Signature uint64

// CanonicalSignature computes the fingerprint. It is label-aware: node
// colors start from the task type, so an all-Map chain and an all-Reduce
// chain differ.
func (g *Graph) CanonicalSignature() Signature {
	n := g.Size()
	h := fnv.New64a()
	fmt.Fprintf(h, "n=%d;e=%d;", n, g.edges)
	if n == 0 {
		return Signature(h.Sum64())
	}

	// Color refinement to a fixed point (at most n rounds).
	colors := make(map[NodeID]string, n)
	for id, node := range g.nodes {
		colors[id] = fmt.Sprintf("%s/%d/%d", node.Type, len(g.pred[id]), len(g.succ[id]))
	}
	for round := 0; round < n; round++ {
		next := make(map[NodeID]string, n)
		for id := range g.nodes {
			preds := make([]string, 0, len(g.pred[id]))
			for _, p := range g.pred[id] {
				preds = append(preds, colors[p])
			}
			succs := make([]string, 0, len(g.succ[id]))
			for _, s := range g.succ[id] {
				succs = append(succs, colors[s])
			}
			sort.Strings(preds)
			sort.Strings(succs)
			next[id] = colors[id] + "|P:" + strings.Join(preds, ",") + "|S:" + strings.Join(succs, ",")
		}
		// Compress to short color names to bound string growth.
		next = compressColors(next)
		if sameColoring(colors, next) {
			break
		}
		colors = next
	}

	multiset := make([]string, 0, n)
	for _, c := range colors {
		multiset = append(multiset, c)
	}
	sort.Strings(multiset)
	for _, c := range multiset {
		h.Write([]byte(c))
		h.Write([]byte{0})
	}
	return Signature(h.Sum64())
}

// compressColors renames each distinct color string to a short canonical
// token ("c0", "c1", ... in lexicographic order of the original strings).
func compressColors(colors map[NodeID]string) map[NodeID]string {
	distinct := make([]string, 0, len(colors))
	seen := make(map[string]bool, len(colors))
	for _, c := range colors {
		if !seen[c] {
			seen[c] = true
			distinct = append(distinct, c)
		}
	}
	sort.Strings(distinct)
	rename := make(map[string]string, len(distinct))
	for i, c := range distinct {
		rename[c] = fmt.Sprintf("c%d", i)
	}
	out := make(map[NodeID]string, len(colors))
	for id, c := range colors {
		out[id] = rename[c]
	}
	return out
}

// sameColoring reports whether two colorings induce the same partition
// refinement state (same number of color classes and same class per
// node up to renaming). Because compressColors canonicalizes names by
// lexicographic order of the underlying strings, the refinement has
// converged when the number of distinct classes stops growing.
func sameColoring(a, b map[NodeID]string) bool {
	return countDistinct(a) == countDistinct(b)
}

func countDistinct(colors map[NodeID]string) int {
	seen := make(map[string]bool, len(colors))
	for _, c := range colors {
		seen[c] = true
	}
	return len(seen)
}
