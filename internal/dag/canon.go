package dag

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
)

// Signature is a structural fingerprint of a graph: two graphs with
// different signatures are guaranteed non-isomorphic (as labeled DAGs);
// graphs with equal signatures are isomorphic in all but adversarial
// cases (the fingerprint is a fixed-point color refinement, the same
// family of invariants the WL kernel uses).
type Signature uint64

// CanonicalSignature computes the fingerprint. It is label-aware: node
// colors start from the task type, so an all-Map chain and an all-Reduce
// chain differ. Colors are tracked per position over the CSR arrays;
// the emitted strings (and therefore the signature values) are the same
// as the map-era implementation produced.
func (g *Graph) CanonicalSignature() Signature {
	n := g.Size()
	h := fnv.New64a()
	fmt.Fprintf(h, "n=%d;e=%d;", n, g.NumEdges())
	if n == 0 {
		return Signature(h.Sum64())
	}
	g.ensureBuilt()

	// Color refinement to a fixed point (at most n rounds).
	colors := make([]string, n)
	for p := 0; p < n; p++ {
		node := g.nodes[g.byID[p]]
		colors[p] = fmt.Sprintf("%s/%d/%d", node.Type,
			g.predOff[p+1]-g.predOff[p], g.succOff[p+1]-g.succOff[p])
	}
	next := make([]string, n)
	for round := 0; round < n; round++ {
		for p := 0; p < n; p++ {
			preds := make([]string, 0, g.predOff[p+1]-g.predOff[p])
			for _, q := range g.predAdj[g.predOff[p]:g.predOff[p+1]] {
				preds = append(preds, colors[q])
			}
			succs := make([]string, 0, g.succOff[p+1]-g.succOff[p])
			for _, q := range g.succAdj[g.succOff[p]:g.succOff[p+1]] {
				succs = append(succs, colors[q])
			}
			sort.Strings(preds)
			sort.Strings(succs)
			next[p] = colors[p] + "|P:" + strings.Join(preds, ",") + "|S:" + strings.Join(succs, ",")
		}
		// Compress to short color names to bound string growth.
		compressed := compressColors(next)
		if countDistinct(colors) == countDistinct(compressed) {
			break
		}
		colors, next = compressed, colors
	}

	multiset := append([]string(nil), colors...)
	sort.Strings(multiset)
	for _, c := range multiset {
		h.Write([]byte(c))
		h.Write([]byte{0})
	}
	return Signature(h.Sum64())
}

// compressColors renames each distinct color string to a short canonical
// token ("c0", "c1", ... in lexicographic order of the original strings).
func compressColors(colors []string) []string {
	distinct := make([]string, 0, len(colors))
	seen := make(map[string]bool, len(colors))
	for _, c := range colors {
		if !seen[c] {
			seen[c] = true
			distinct = append(distinct, c)
		}
	}
	sort.Strings(distinct)
	rename := make(map[string]string, len(distinct))
	for i, c := range distinct {
		rename[c] = fmt.Sprintf("c%d", i)
	}
	out := make([]string, len(colors))
	for i, c := range colors {
		out[i] = rename[c]
	}
	return out
}

// countDistinct counts color classes; the refinement has converged when
// the count stops growing (compressColors canonicalizes names, so class
// identity survives the renaming).
func countDistinct(colors []string) int {
	seen := make(map[string]bool, len(colors))
	for _, c := range colors {
		seen[c] = true
	}
	return len(seen)
}
