package dag

import (
	"fmt"
	"sort"
)

// Levels assigns each vertex its longest-path layer: sources are level 0
// and every other vertex sits one past its deepest predecessor. This is
// the layering behind the paper's critical-path and width measurements.
func (g *Graph) Levels() (map[NodeID]int, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	lvl := make(map[NodeID]int, len(order))
	for _, id := range order {
		l := 0
		for _, p := range g.pred[id] {
			if lvl[p]+1 > l {
				l = lvl[p] + 1
			}
		}
		lvl[id] = l
	}
	return lvl, nil
}

// Depth returns the critical-path length measured in vertices — the
// paper's "job critical path" (§V-A), which ranges 2–8 in its sample.
// The empty graph has depth 0; a single task has depth 1.
func (g *Graph) Depth() (int, error) {
	if g.Size() == 0 {
		return 0, nil
	}
	lvl, err := g.Levels()
	if err != nil {
		return 0, err
	}
	maxL := 0
	for _, l := range lvl {
		if l > maxL {
			maxL = l
		}
	}
	return maxL + 1, nil
}

// WidthProfile returns the number of vertices per level, index = level.
func (g *Graph) WidthProfile() ([]int, error) {
	if g.Size() == 0 {
		return nil, nil
	}
	lvl, err := g.Levels()
	if err != nil {
		return nil, err
	}
	maxL := 0
	for _, l := range lvl {
		if l > maxL {
			maxL = l
		}
	}
	widths := make([]int, maxL+1)
	for _, l := range lvl {
		widths[l]++
	}
	return widths, nil
}

// MaxWidth returns the maximum number of same-level tasks — the paper's
// "job maximum width", its proxy for attainable parallelism (§V-A).
func (g *Graph) MaxWidth() (int, error) {
	widths, err := g.WidthProfile()
	if err != nil {
		return 0, err
	}
	maxW := 0
	for _, w := range widths {
		if w > maxW {
			maxW = w
		}
	}
	return maxW, nil
}

// CriticalPath returns one longest vertex path (by hop count) and its
// length. Ties are broken toward smaller ids for determinism.
func (g *Graph) CriticalPath() ([]NodeID, error) {
	if g.Size() == 0 {
		return nil, nil
	}
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	best := make(map[NodeID]int, len(order)) // longest path ending at v, in vertices
	prev := make(map[NodeID]NodeID, len(order))
	for _, id := range order {
		best[id] = 1
		for _, p := range sortedCopy(g.pred[id]) {
			if best[p]+1 > best[id] {
				best[id] = best[p] + 1
				prev[id] = p
			}
		}
	}
	var end NodeID
	endLen := 0
	for _, id := range order {
		if best[id] > endLen || (best[id] == endLen && (endLen == 0 || id < end)) {
			end = id
			endLen = best[id]
		}
	}
	path := make([]NodeID, 0, endLen)
	for v := end; ; {
		path = append(path, v)
		p, ok := prev[v]
		if !ok {
			break
		}
		v = p
	}
	// Reverse into source→sink order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, nil
}

// CriticalPathDuration returns the largest sum of node durations along
// any dependency path — the lower bound on job completion time given
// unlimited parallelism. Used by the scheduling application.
func (g *Graph) CriticalPathDuration() (float64, error) {
	order, err := g.TopoSort()
	if err != nil {
		return 0, err
	}
	finish := make(map[NodeID]float64, len(order))
	var maxFinish float64
	for _, id := range order {
		var start float64
		for _, p := range g.pred[id] {
			if finish[p] > start {
				start = finish[p]
			}
		}
		finish[id] = start + g.nodes[id].Duration
		if finish[id] > maxFinish {
			maxFinish = finish[id]
		}
	}
	return maxFinish, nil
}

// DegreeStats summarizes vertex degrees for the characterization tables.
type DegreeStats struct {
	MaxIn, MaxOut   int
	MeanIn, MeanOut float64
}

// Degrees computes degree statistics. For a DAG, MeanIn == MeanOut ==
// edges/vertices.
func (g *Graph) Degrees() DegreeStats {
	var s DegreeStats
	n := g.Size()
	if n == 0 {
		return s
	}
	for id := range g.nodes {
		if d := len(g.pred[id]); d > s.MaxIn {
			s.MaxIn = d
		}
		if d := len(g.succ[id]); d > s.MaxOut {
			s.MaxOut = d
		}
	}
	s.MeanIn = float64(g.edges) / float64(n)
	s.MeanOut = s.MeanIn
	return s
}

// TypeCounts returns the number of tasks per framework role — the M/J/R
// census of Figure 6.
func (g *Graph) TypeCounts() map[string]int {
	out := make(map[string]int)
	for _, n := range g.nodes {
		out[n.Type.String()]++
	}
	return out
}

// IsConnected reports whether the underlying undirected graph is a single
// weakly connected component. The paper's WL kernel is defined over
// connected graphs; disconnected jobs are rare and filtered upstream.
func (g *Graph) IsConnected() bool {
	if g.Size() <= 1 {
		return true
	}
	// Undirected BFS from an arbitrary vertex.
	var start NodeID
	for id := range g.nodes {
		start = id
		break
	}
	seen := map[NodeID]bool{start: true}
	queue := []NodeID{start}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, nb := range g.succ[v] {
			if !seen[nb] {
				seen[nb] = true
				queue = append(queue, nb)
			}
		}
		for _, nb := range g.pred[v] {
			if !seen[nb] {
				seen[nb] = true
				queue = append(queue, nb)
			}
		}
	}
	return len(seen) == g.Size()
}

// Summary renders a one-line structural description for logs and tables.
func (g *Graph) Summary() string {
	depth, err := g.Depth()
	if err != nil {
		return fmt.Sprintf("job %s: invalid (%v)", g.JobID, err)
	}
	width, _ := g.MaxWidth()
	return fmt.Sprintf("job %s: %d tasks, %d edges, depth %d, width %d",
		g.JobID, g.Size(), g.NumEdges(), depth, width)
}

// SortedTypeKeys returns the type labels present, sorted, for stable
// iteration in reports.
func SortedTypeKeys(counts map[string]int) []string {
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
