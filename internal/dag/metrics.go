package dag

import (
	"fmt"
	"sort"
)

// levelsPositions assigns each position its longest-path layer over the
// CSR arrays: sources are level 0 and every other vertex sits one past
// its deepest predecessor. All level consumers (Depth, WidthProfile,
// ASCII) run on this flat form; Levels wraps it in the map-era shape.
func (g *Graph) levelsPositions() ([]int32, error) {
	order, err := g.topoPositions(nil)
	if err != nil {
		return nil, err
	}
	lvl := make([]int32, len(order))
	for _, p := range order {
		var l int32
		for _, q := range g.predAdj[g.predOff[p]:g.predOff[p+1]] {
			if lvl[q]+1 > l {
				l = lvl[q] + 1
			}
		}
		lvl[p] = l
	}
	return lvl, nil
}

// Levels assigns each vertex its longest-path layer: sources are level 0
// and every other vertex sits one past its deepest predecessor. This is
// the layering behind the paper's critical-path and width measurements.
func (g *Graph) Levels() (map[NodeID]int, error) {
	lvl, err := g.levelsPositions()
	if err != nil {
		return nil, err
	}
	out := make(map[NodeID]int, len(lvl))
	for p, l := range lvl {
		out[g.IDAt(p)] = int(l)
	}
	return out, nil
}

// Depth returns the critical-path length measured in vertices — the
// paper's "job critical path" (§V-A), which ranges 2–8 in its sample.
// The empty graph has depth 0; a single task has depth 1.
func (g *Graph) Depth() (int, error) {
	if g.Size() == 0 {
		return 0, nil
	}
	lvl, err := g.levelsPositions()
	if err != nil {
		return 0, err
	}
	var maxL int32
	for _, l := range lvl {
		if l > maxL {
			maxL = l
		}
	}
	return int(maxL) + 1, nil
}

// WidthProfile returns the number of vertices per level, index = level.
func (g *Graph) WidthProfile() ([]int, error) {
	if g.Size() == 0 {
		return nil, nil
	}
	lvl, err := g.levelsPositions()
	if err != nil {
		return nil, err
	}
	var maxL int32
	for _, l := range lvl {
		if l > maxL {
			maxL = l
		}
	}
	widths := make([]int, maxL+1)
	for _, l := range lvl {
		widths[l]++
	}
	return widths, nil
}

// DepthAndMaxWidth computes Depth and MaxWidth from one level
// assignment — the per-job structural stage asks for both, and the
// level computation dominates either metric.
func (g *Graph) DepthAndMaxWidth() (depth, maxWidth int, err error) {
	if g.Size() == 0 {
		return 0, 0, nil
	}
	lvl, err := g.levelsPositions()
	if err != nil {
		return 0, 0, err
	}
	var maxL int32
	for _, l := range lvl {
		if l > maxL {
			maxL = l
		}
	}
	counts := make([]int, maxL+1)
	for _, l := range lvl {
		counts[l]++
		if counts[l] > maxWidth {
			maxWidth = counts[l]
		}
	}
	return int(maxL) + 1, maxWidth, nil
}

// MaxWidth returns the maximum number of same-level tasks — the paper's
// "job maximum width", its proxy for attainable parallelism (§V-A).
func (g *Graph) MaxWidth() (int, error) {
	if g.Size() == 0 {
		return 0, nil
	}
	lvl, err := g.levelsPositions()
	if err != nil {
		return 0, err
	}
	var maxL int32
	for _, l := range lvl {
		if l > maxL {
			maxL = l
		}
	}
	counts := make([]int, maxL+1)
	maxW := 0
	for _, l := range lvl {
		counts[l]++
		if counts[l] > maxW {
			maxW = counts[l]
		}
	}
	return maxW, nil
}

// CriticalPath returns one longest vertex path (by hop count) and its
// length. Ties are broken toward smaller ids for determinism.
func (g *Graph) CriticalPath() ([]NodeID, error) {
	if g.Size() == 0 {
		return nil, nil
	}
	order, err := g.topoPositions(nil)
	if err != nil {
		return nil, err
	}
	n := len(order)
	best := make([]int32, n) // longest path ending at position, in vertices
	prev := make([]int32, n)
	for i := range prev {
		prev[i] = -1
	}
	for _, p := range order {
		best[p] = 1
		// Predecessor positions are ascending, so the smallest-id
		// predecessor wins ties, matching the map-era behavior.
		for _, q := range g.predAdj[g.predOff[p]:g.predOff[p+1]] {
			if best[q]+1 > best[p] {
				best[p] = best[q] + 1
				prev[p] = q
			}
		}
	}
	end, endLen := int32(-1), int32(0)
	for _, p := range order {
		if best[p] > endLen || (best[p] == endLen && (endLen == 0 || g.IDAt(int(p)) < g.IDAt(int(end)))) {
			end = p
			endLen = best[p]
		}
	}
	path := make([]NodeID, 0, endLen)
	for v := end; v >= 0; v = prev[v] {
		path = append(path, g.IDAt(int(v)))
	}
	// Reverse into source→sink order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, nil
}

// CriticalPathDuration returns the largest sum of node durations along
// any dependency path — the lower bound on job completion time given
// unlimited parallelism. Used by the scheduling application.
func (g *Graph) CriticalPathDuration() (float64, error) {
	order, err := g.topoPositions(nil)
	if err != nil {
		return 0, err
	}
	finish := make([]float64, len(order))
	var maxFinish float64
	for _, p := range order {
		var start float64
		for _, q := range g.predAdj[g.predOff[p]:g.predOff[p+1]] {
			if finish[q] > start {
				start = finish[q]
			}
		}
		finish[p] = start + g.nodes[g.byID[p]].Duration
		if finish[p] > maxFinish {
			maxFinish = finish[p]
		}
	}
	return maxFinish, nil
}

// DegreeStats summarizes vertex degrees for the characterization tables.
type DegreeStats struct {
	MaxIn, MaxOut   int
	MeanIn, MeanOut float64
}

// Degrees computes degree statistics. For a DAG, MeanIn == MeanOut ==
// edges/vertices.
func (g *Graph) Degrees() DegreeStats {
	var s DegreeStats
	n := g.Size()
	if n == 0 {
		return s
	}
	g.ensureBuilt()
	for p := 0; p < n; p++ {
		if d := int(g.predOff[p+1] - g.predOff[p]); d > s.MaxIn {
			s.MaxIn = d
		}
		if d := int(g.succOff[p+1] - g.succOff[p]); d > s.MaxOut {
			s.MaxOut = d
		}
	}
	s.MeanIn = float64(g.NumEdges()) / float64(n)
	s.MeanOut = s.MeanIn
	return s
}

// TypeCounts returns the number of tasks per framework role — the M/J/R
// census of Figure 6.
func (g *Graph) TypeCounts() map[string]int {
	out := make(map[string]int)
	for i := range g.nodes {
		out[g.nodes[i].Type.String()]++
	}
	return out
}

// IsConnected reports whether the underlying undirected graph is a single
// weakly connected component. The paper's WL kernel is defined over
// connected graphs; disconnected jobs are rare and filtered upstream.
func (g *Graph) IsConnected() bool {
	n := g.Size()
	if n <= 1 {
		return true
	}
	g.ensureBuilt()
	// Undirected BFS from position 0.
	seen := make([]bool, n)
	seen[0] = true
	queue := make([]int32, 1, n)
	queue[0] = 0
	count := 1
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, nb := range g.succAdj[g.succOff[v]:g.succOff[v+1]] {
			if !seen[nb] {
				seen[nb] = true
				count++
				queue = append(queue, nb)
			}
		}
		for _, nb := range g.predAdj[g.predOff[v]:g.predOff[v+1]] {
			if !seen[nb] {
				seen[nb] = true
				count++
				queue = append(queue, nb)
			}
		}
	}
	return count == n
}

// Summary renders a one-line structural description for logs and tables.
func (g *Graph) Summary() string {
	depth, err := g.Depth()
	if err != nil {
		return fmt.Sprintf("job %s: invalid (%v)", g.JobID, err)
	}
	width, _ := g.MaxWidth()
	return fmt.Sprintf("job %s: %d tasks, %d edges, depth %d, width %d",
		g.JobID, g.Size(), g.NumEdges(), depth, width)
}

// SortedTypeKeys returns the type labels present, sorted, for stable
// iteration in reports.
func SortedTypeKeys(counts map[string]int) []string {
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
