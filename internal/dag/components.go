package dag

import "sort"

// Components returns the weakly connected components of g as slices of
// node ids, each sorted ascending, ordered by their smallest member.
// The paper's kernel operates on connected job graphs; disconnected
// jobs (rare truncation artifacts in the trace) can be split into
// components and analyzed piecewise.
func (g *Graph) Components() [][]NodeID {
	g.ensureBuilt()
	n := g.Size()
	seen := make([]bool, n)
	var comps [][]NodeID
	for start := 0; start < n; start++ {
		if seen[start] {
			continue
		}
		var comp []NodeID
		queue := []int32{int32(start)}
		seen[start] = true
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			comp = append(comp, g.nodes[g.byID[v]].ID)
			for _, nb := range g.succAdj[g.succOff[v]:g.succOff[v+1]] {
				if !seen[nb] {
					seen[nb] = true
					queue = append(queue, nb)
				}
			}
			for _, nb := range g.predAdj[g.predOff[v]:g.predOff[v+1]] {
				if !seen[nb] {
					seen[nb] = true
					queue = append(queue, nb)
				}
			}
		}
		sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
		comps = append(comps, comp)
	}
	// Start positions iterate ascending by id, so components already
	// appear in order of smallest member; keep the contract explicit.
	sort.Slice(comps, func(i, j int) bool { return comps[i][0] < comps[j][0] })
	return comps
}

// InducedSubgraph returns the subgraph of g on the given node ids (all
// must exist), with every edge of g whose endpoints are both kept. The
// job id is preserved.
func (g *Graph) InducedSubgraph(ids []NodeID) (*Graph, error) {
	sub := New(g.JobID)
	keep := make(map[NodeID]bool, len(ids))
	for _, id := range ids {
		n := g.Node(id)
		if n == nil {
			return nil, &missingNodeError{job: g.JobID, id: id}
		}
		if keep[id] {
			continue
		}
		keep[id] = true
		if err := sub.AddNode(*n); err != nil {
			return nil, err
		}
	}
	for id := range keep {
		p := g.PosOf(id)
		for _, q := range g.SuccPos(p) {
			to := g.nodes[g.byID[q]].ID
			if keep[to] {
				if err := sub.AddEdge(id, to); err != nil {
					return nil, err
				}
			}
		}
	}
	return sub, nil
}

// LargestComponent returns the induced subgraph of g's largest weakly
// connected component (ties broken toward the one with the smallest
// member id). The empty graph returns an empty graph.
func (g *Graph) LargestComponent() (*Graph, error) {
	comps := g.Components()
	if len(comps) == 0 {
		return New(g.JobID), nil
	}
	best := comps[0]
	for _, c := range comps[1:] {
		if len(c) > len(best) {
			best = c
		}
	}
	return g.InducedSubgraph(best)
}

// missingNodeError reports an InducedSubgraph request for an absent id.
type missingNodeError struct {
	job string
	id  NodeID
}

func (e *missingNodeError) Error() string {
	return "dag: job " + e.job + ": induced subgraph references missing node"
}
