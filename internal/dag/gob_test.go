package dag

import (
	"bytes"
	"encoding/gob"
	"testing"

	"jobgraph/internal/taskname"
)

func TestGraphGobRoundTrip(t *testing.T) {
	g := New("j_gob")
	for i := 1; i <= 4; i++ {
		typ := taskname.TypeMap
		if i%2 == 0 {
			typ = taskname.TypeReduce
		}
		if err := g.AddNode(Node{ID: NodeID(i), Type: typ, Duration: float64(i) * 1.5, Instances: i, PlanCPU: 0.5, PlanMem: 0.25}); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range [][2]NodeID{{1, 2}, {1, 3}, {2, 4}, {3, 4}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(g); err != nil {
		t.Fatal(err)
	}
	var got Graph
	if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
		t.Fatal(err)
	}

	// The JSON wire format is canonical, so byte equality of the
	// marshaled forms is structural equality.
	a, err := g.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := got.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("round trip changed the graph:\n%s\nvs\n%s", a, b)
	}

	// Pointer slices (the shape artifacts actually use) survive too.
	graphs := []*Graph{g, g}
	buf.Reset()
	if err := gob.NewEncoder(&buf).Encode(graphs); err != nil {
		t.Fatal(err)
	}
	var back []*Graph
	if err := gob.NewDecoder(&buf).Decode(&back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0].Size() != g.Size() {
		t.Fatalf("slice round trip: %d graphs, size %d", len(back), back[0].Size())
	}
}
