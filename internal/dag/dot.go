package dag

import (
	"fmt"
	"sort"
	"strings"
)

// DOT renders the graph in Graphviz dot format, one node per task
// labeled "<Type><ID>", matching the paper's Figure 2/8 visual style.
// Output is deterministic: nodes and edges appear in ascending order.
func (g *Graph) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", "job_"+g.JobID)
	b.WriteString("  rankdir=TB;\n  node [shape=circle];\n")
	for _, id := range g.NodeIDs() {
		n := g.nodes[id]
		fmt.Fprintf(&b, "  t%d [label=\"%s%d\"];\n", id, n.Type, id)
	}
	type edge struct{ from, to NodeID }
	var edges []edge
	for from, ss := range g.succ {
		for _, to := range ss {
			edges = append(edges, edge{from, to})
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].from != edges[j].from {
			return edges[i].from < edges[j].from
		}
		return edges[i].to < edges[j].to
	})
	for _, e := range edges {
		fmt.Fprintf(&b, "  t%d -> t%d;\n", e.from, e.to)
	}
	b.WriteString("}\n")
	return b.String()
}

// ASCII renders the graph level by level as indented text — a cheap
// terminal visualization used by the example programs:
//
//	L0: M1 M3
//	L1: R2 R4
//	L2: R5
func (g *Graph) ASCII() string {
	if g.Size() == 0 {
		return "(empty job)\n"
	}
	lvl, err := g.Levels()
	if err != nil {
		return fmt.Sprintf("(invalid job: %v)\n", err)
	}
	maxL := 0
	for _, l := range lvl {
		if l > maxL {
			maxL = l
		}
	}
	byLevel := make([][]NodeID, maxL+1)
	for id, l := range lvl {
		byLevel[l] = append(byLevel[l], id)
	}
	var b strings.Builder
	for l, ids := range byLevel {
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		fmt.Fprintf(&b, "L%d:", l)
		for _, id := range ids {
			fmt.Fprintf(&b, " %s%d", g.nodes[id].Type, id)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
