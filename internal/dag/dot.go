package dag

import (
	"fmt"
	"strings"
)

// DOT renders the graph in Graphviz dot format, one node per task
// labeled "<Type><ID>", matching the paper's Figure 2/8 visual style.
// Output is deterministic: nodes and edges appear in ascending order
// (CSR rows are already sorted by id on both endpoints).
func (g *Graph) DOT() string {
	g.ensureBuilt()
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", "job_"+g.JobID)
	b.WriteString("  rankdir=TB;\n  node [shape=circle];\n")
	n := g.NumNodes()
	for p := 0; p < n; p++ {
		node := g.NodeAt(p)
		fmt.Fprintf(&b, "  t%d [label=\"%s%d\"];\n", node.ID, node.Type, node.ID)
	}
	for p := 0; p < n; p++ {
		from := g.IDAt(p)
		for _, q := range g.SuccPos(p) {
			fmt.Fprintf(&b, "  t%d -> t%d;\n", from, g.IDAt(int(q)))
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// ASCII renders the graph level by level as indented text — a cheap
// terminal visualization used by the example programs:
//
//	L0: M1 M3
//	L1: R2 R4
//	L2: R5
func (g *Graph) ASCII() string {
	if g.Size() == 0 {
		return "(empty job)\n"
	}
	lvl, err := g.levelsPositions()
	if err != nil {
		return fmt.Sprintf("(invalid job: %v)\n", err)
	}
	var maxL int32
	for _, l := range lvl {
		if l > maxL {
			maxL = l
		}
	}
	byLevel := make([][]int32, maxL+1)
	for p, l := range lvl {
		// Positions ascend by id, so each level list is already sorted.
		byLevel[l] = append(byLevel[l], int32(p))
	}
	var b strings.Builder
	for l, ps := range byLevel {
		fmt.Fprintf(&b, "L%d:", l)
		for _, p := range ps {
			node := g.NodeAt(int(p))
			fmt.Fprintf(&b, " %s%d", node.Type, node.ID)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
