package dag

import (
	"math/rand"
	"testing"
	"testing/quick"

	"jobgraph/internal/taskname"
)

func TestLevelsPaperExample(t *testing.T) {
	g := paperJob(t)
	lvl, err := g.Levels()
	if err != nil {
		t.Fatal(err)
	}
	want := map[NodeID]int{1: 0, 3: 0, 2: 1, 4: 1, 5: 2}
	for id, w := range want {
		if lvl[id] != w {
			t.Fatalf("levels = %v, want %v", lvl, want)
		}
	}
}

func TestDepthAndWidth(t *testing.T) {
	g := paperJob(t)
	d, err := g.Depth()
	if err != nil || d != 3 {
		t.Fatalf("depth = %d, %v; want 3", d, err)
	}
	w, err := g.MaxWidth()
	if err != nil || w != 2 {
		t.Fatalf("width = %d, %v; want 2", w, err)
	}
	wp, _ := g.WidthProfile()
	if len(wp) != 3 || wp[0] != 2 || wp[1] != 2 || wp[2] != 1 {
		t.Fatalf("width profile = %v", wp)
	}
}

func TestDepthEmptyAndSingle(t *testing.T) {
	d, err := New("e").Depth()
	if err != nil || d != 0 {
		t.Fatalf("empty depth = %d, %v", d, err)
	}
	g := New("s")
	if err := g.AddNode(Node{ID: 1}); err != nil {
		t.Fatal(err)
	}
	d, err = g.Depth()
	if err != nil || d != 1 {
		t.Fatalf("single depth = %d, %v", d, err)
	}
	w, _ := g.MaxWidth()
	if w != 1 {
		t.Fatalf("single width = %d", w)
	}
}

func TestChainMetrics(t *testing.T) {
	g := chain(t, 8)
	d, _ := g.Depth()
	w, _ := g.MaxWidth()
	if d != 8 || w != 1 {
		t.Fatalf("chain(8): depth=%d width=%d, want 8, 1", d, w)
	}
}

// invertedTriangle builds k map sources all feeding one reduce sink —
// the paper's archetypal inverted-triangle (simple MapReduce) shape.
func invertedTriangle(t testing.TB, k int) *Graph {
	t.Helper()
	g := New("invtri")
	sink := NodeID(k + 1)
	if err := g.AddNode(Node{ID: sink, Type: taskname.TypeReduce}); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= k; i++ {
		if err := g.AddNode(Node{ID: NodeID(i), Type: taskname.TypeMap}); err != nil {
			t.Fatal(err)
		}
		if err := g.AddEdge(NodeID(i), sink); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestInvertedTriangleMetrics(t *testing.T) {
	// Paper's extreme case: 30 of 31 tasks in parallel, one reducer.
	g := invertedTriangle(t, 30)
	d, _ := g.Depth()
	w, _ := g.MaxWidth()
	if d != 2 || w != 30 {
		t.Fatalf("depth=%d width=%d, want 2, 30", d, w)
	}
}

func TestCriticalPath(t *testing.T) {
	g := paperJob(t)
	path, err := g.CriticalPath()
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 3 {
		t.Fatalf("critical path = %v, want length 3", path)
	}
	// Path must follow edges.
	for i := 0; i+1 < len(path); i++ {
		if !g.HasEdge(path[i], path[i+1]) {
			t.Fatalf("critical path %v uses missing edge", path)
		}
	}
	if path[len(path)-1] != 5 {
		t.Fatalf("critical path should end at the sink: %v", path)
	}
	empty, err := New("e").CriticalPath()
	if err != nil || empty != nil {
		t.Fatalf("empty critical path = %v, %v", empty, err)
	}
}

func TestCriticalPathDuration(t *testing.T) {
	g := paperJob(t)
	// Longest duration path: M3(20) -> R4(8) -> R5(3) = 31.
	got, err := g.CriticalPathDuration()
	if err != nil {
		t.Fatal(err)
	}
	if got != 31 {
		t.Fatalf("critical path duration = %g, want 31", got)
	}
}

func TestDegrees(t *testing.T) {
	g := paperJob(t)
	s := g.Degrees()
	if s.MaxIn != 4 { // R5 has 4 predecessors
		t.Fatalf("maxIn = %d, want 4", s.MaxIn)
	}
	if s.MaxOut != 2 { // M1/M3 feed their reduce and R5
		t.Fatalf("maxOut = %d, want 2", s.MaxOut)
	}
	if s.MeanIn != 6.0/5.0 || s.MeanOut != s.MeanIn {
		t.Fatalf("mean degrees = %+v", s)
	}
	if z := New("e").Degrees(); z.MaxIn != 0 || z.MeanIn != 0 {
		t.Fatalf("empty degrees = %+v", z)
	}
}

func TestTypeCounts(t *testing.T) {
	g := paperJob(t)
	c := g.TypeCounts()
	if c["M"] != 2 || c["R"] != 3 {
		t.Fatalf("type counts = %v", c)
	}
	keys := SortedTypeKeys(c)
	if len(keys) != 2 || keys[0] != "M" || keys[1] != "R" {
		t.Fatalf("sorted keys = %v", keys)
	}
}

// randomDAG builds a random DAG where edges only go from lower to higher
// ids, guaranteeing acyclicity by construction.
func randomDAG(rng *rand.Rand, n int) *Graph {
	g := New("rand")
	types := []taskname.Type{taskname.TypeMap, taskname.TypeReduce, taskname.TypeJoin}
	for i := 1; i <= n; i++ {
		_ = g.AddNode(Node{ID: NodeID(i), Type: types[rng.Intn(3)], Duration: rng.Float64() * 100})
	}
	for i := 1; i <= n; i++ {
		for j := i + 1; j <= n; j++ {
			if rng.Float64() < 0.3 {
				_ = g.AddEdge(NodeID(i), NodeID(j))
			}
		}
	}
	return g
}

func TestMetricInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 1+rng.Intn(20))
		if err := g.Validate(); err != nil {
			return false
		}
		depth, err1 := g.Depth()
		width, err2 := g.MaxWidth()
		if err1 != nil || err2 != nil {
			return false
		}
		n := g.Size()
		// Depth and width both lie in [1, n] and cannot multiply to
		// less than n (each level holds at most `width` nodes).
		if depth < 1 || depth > n || width < 1 || width > n {
			return false
		}
		if depth*width < n {
			return false
		}
		path, err := g.CriticalPath()
		if err != nil || len(path) != depth {
			return false
		}
		for i := 0; i+1 < len(path); i++ {
			if !g.HasEdge(path[i], path[i+1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCriticalPathDurationAtLeastMaxNode(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 1+rng.Intn(15))
		cpd, err := g.CriticalPathDuration()
		if err != nil {
			return false
		}
		var maxDur, sumDur float64
		for _, id := range g.NodeIDs() {
			d := g.Node(id).Duration
			if d > maxDur {
				maxDur = d
			}
			sumDur += d
		}
		return cpd >= maxDur-1e-9 && cpd <= sumDur+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
