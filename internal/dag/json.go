package dag

import (
	"encoding/json"
	"fmt"

	"jobgraph/internal/taskname"
)

// jsonGraph is the stable wire format for a job DAG: nodes and edges in
// ascending order, task types as their single-letter names.
type jsonGraph struct {
	JobID string     `json:"job_id"`
	Nodes []jsonNode `json:"nodes"`
	Edges [][2]int   `json:"edges"`
}

type jsonNode struct {
	ID        int     `json:"id"`
	Type      string  `json:"type"`
	Duration  float64 `json:"duration,omitempty"`
	Instances int     `json:"instances,omitempty"`
	PlanCPU   float64 `json:"plan_cpu,omitempty"`
	PlanMem   float64 `json:"plan_mem,omitempty"`
}

// MarshalJSON encodes the graph deterministically.
func (g *Graph) MarshalJSON() ([]byte, error) {
	jg := jsonGraph{JobID: g.JobID}
	for _, id := range g.NodeIDs() {
		n := g.Node(id)
		jg.Nodes = append(jg.Nodes, jsonNode{
			ID:        int(n.ID),
			Type:      n.Type.String(),
			Duration:  n.Duration,
			Instances: n.Instances,
			PlanCPU:   n.PlanCPU,
			PlanMem:   n.PlanMem,
		})
		for _, s := range g.Succ(id) {
			jg.Edges = append(jg.Edges, [2]int{int(id), int(s)})
		}
	}
	return json.Marshal(jg)
}

// UnmarshalJSON decodes and validates a graph. The receiver is reset.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return fmt.Errorf("dag: %w", err)
	}
	fresh := New(jg.JobID)
	for _, n := range jg.Nodes {
		typ := taskname.TypeOther
		if len(n.Type) == 1 {
			switch n.Type[0] {
			case 'M', 'R', 'J':
				typ = taskname.Type(n.Type[0])
			}
		}
		if err := fresh.AddNode(Node{
			ID:        NodeID(n.ID),
			Type:      typ,
			Duration:  n.Duration,
			Instances: n.Instances,
			PlanCPU:   n.PlanCPU,
			PlanMem:   n.PlanMem,
		}); err != nil {
			return err
		}
	}
	for _, e := range jg.Edges {
		if err := fresh.AddEdge(NodeID(e[0]), NodeID(e[1])); err != nil {
			return err
		}
	}
	if err := fresh.Validate(); err != nil {
		return err
	}
	*g = *fresh
	return nil
}
