// Command jobgraphd is the streaming classification daemon: it loads
// (or trains) a jobgraph model, then serves an HTTP/JSON API that
// accepts trace rows or whole jobs, assembles DAGs incrementally, and
// classifies completed jobs into the learned groups A–E.
//
// Usage:
//
//	jobgraphd [-addr localhost:8847] [-model model.gob]
//	          [-ann] [-ann-index index.gob]
//	          [-trace batch_task.csv | -gen 10000] [-sample 100] [-groups 5]
//	          [-journal serve.journal] [-batch-size 64] [-batch-wait 25ms]
//	          [-queue-depth 1024] [-request-timeout 30s] [-drain-timeout 30s]
//	          [-v] [-watchdog 30s] [-ledger runs.jsonl] ...
//
// Robustness contract:
//
//   - A full admission queue answers 429 + Retry-After; nothing queues
//     unbounded. Clients retry with internal/serve/client.
//   - Every accepted row is fsync'd to -journal before acknowledgment;
//     kill -9 the daemon and the next boot replays the journal and
//     classifies every accepted job exactly once.
//   - SIGTERM/SIGINT drain: stop accepting, flush in-flight batches,
//     compact the journal, write the ledger entry, exit 0. A second
//     signal hard-exits.
//   - POST /model/reload hot-swaps the model from -model atomically;
//     in-flight classifications finish on the model they started with.
//
// The -fault-* flags inject deterministic connection-level faults
// (accept stall, mid-body read stall, trickled reads) for soak and CI
// testing against the stall watchdog.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"jobgraph/internal/cli"
	"jobgraph/internal/core"
	"jobgraph/internal/faultinject"
	"jobgraph/internal/obs"
	"jobgraph/internal/serve"
	"jobgraph/internal/wl"
)

func main() { cli.Run(run) }

func run() error {
	var (
		addr      = flag.String("addr", "localhost:8847", "listen address (host:port; :0 picks a free port)")
		modelPath = flag.String("model", "", "model file: loaded when present, written after boot training when absent")
		tracePath = flag.String("trace", "", "batch_task CSV to train from when no model file exists (empty: generate)")
		gen       = flag.Int("gen", 10000, "jobs to generate for boot training when no trace given")
		sample    = flag.Int("sample", 100, "jobs to sample for boot training")
		seed      = flag.Int64("seed", 1, "RNG seed for boot training")
		groups    = flag.Int("groups", 5, "number of spectral groups for boot training")
		ann       = flag.Bool("ann", false, "serve GET /v1/similar/{job} from a sketch-LSH index built at boot training")
		annIndex  = flag.String("ann-index", "", "ANN index file: loaded when present, written after boot training with -ann")

		journal        = flag.String("journal", "", "crash-safe admission journal path (empty: accepted work is not durable)")
		batchSize      = flag.Int("batch-size", 64, "admission operations per group-committed batch")
		batchWait      = flag.Duration("batch-wait", 25*time.Millisecond, "max latency before a non-full batch flushes")
		queueDepth     = flag.Int("queue-depth", 1024, "admission queue bound; beyond it requests get 429")
		requestTimeout = flag.Duration("request-timeout", 30*time.Second, "per-request deadline (0: none)")
		drainTimeout   = flag.Duration("drain-timeout", 30*time.Second, "bound on the SIGTERM graceful drain")

		faultAcceptStall      = flag.Duration("fault-accept-stall", 0, "fault injection: delay Accept this long")
		faultAcceptStallConns = flag.Int("fault-accept-stall-conns", 0, "fault injection: connections the accept stall applies to (0: all)")
		faultReadStallAfter   = flag.Int64("fault-read-stall-after", 0, "fault injection: wedge connection reads after this many bytes")
		faultReadStallConns   = flag.Int("fault-read-stall-conns", 0, "fault injection: connections the read stall applies to (0: all)")
		faultSlowReadChunk    = flag.Int("fault-slow-read-chunk", 0, "fault injection: max bytes per connection read")
		faultSlowReadDelay    = flag.Duration("fault-slow-read-delay", 0, "fault injection: delay before each connection read")
	)
	pf := cli.RegisterPipelineFlags("jobgraphd", true)
	flag.Parse()

	sess, err := pf.Start()
	if err != nil {
		return fmt.Errorf("jobgraphd: %v", err)
	}
	defer sess.Close()
	defer pf.Close()

	model, annIx, err := bootModel(pf, *modelPath, *annIndex, *tracePath, *gen, *sample, *seed, *groups, *ann)
	if err != nil {
		return fmt.Errorf("jobgraphd: %v", err)
	}

	cfg := serve.Config{
		Model:          model,
		ANN:            annIx,
		JournalPath:    *journal,
		RequestTimeout: *requestTimeout,
		Workers:        *pf.Workers,
		Batch: serve.BatcherConfig{
			BatchSize:  *batchSize,
			MaxWait:    *batchWait,
			QueueDepth: *queueDepth,
		},
	}
	if *modelPath != "" {
		cfg.Reload = func(ctx context.Context) (*core.Model, error) {
			return core.LoadModel(*modelPath)
		}
	}
	if *annIndex != "" {
		cfg.ReloadANN = func(ctx context.Context) (*wl.ANNIndex, error) {
			return loadANNFile(*annIndex)
		}
	}
	srv, err := serve.New(cfg)
	if err != nil {
		return fmt.Errorf("jobgraphd: %v", err)
	}
	if n := len(srv.Replayed()); n > 0 {
		fmt.Fprintf(os.Stderr, "jobgraphd: journal replay classified %d in-flight job(s)\n", n)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("jobgraphd: listen: %v", err)
	}
	faults := faultinject.ListenerFaults{
		AcceptStall:      *faultAcceptStall,
		AcceptStallConns: *faultAcceptStallConns,
		ReadStallAfter:   *faultReadStallAfter,
		ReadStallConns:   *faultReadStallConns,
		SlowReadChunk:    *faultSlowReadChunk,
		SlowReadDelay:    *faultSlowReadDelay,
	}
	if faults.Active() {
		ln = faults.Wrap(ln)
		sess.AddWarning("connection fault injection active")
	}

	// Announced unconditionally (not behind -v) so -addr :0 is usable
	// and scripts can scrape the resolved port.
	fmt.Fprintf(os.Stderr, "jobgraphd listening on http://%s (model: %d groups, trained on %d jobs)\n",
		ln.Addr(), len(model.Groups), model.TrainedOn)

	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	if *requestTimeout > 0 {
		// A trickling or wedged client cannot hold a request slot past
		// the request deadline plus slack.
		hs.ReadTimeout = *requestTimeout + 10*time.Second
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return fmt.Errorf("jobgraphd: serve: %v", err)
	case <-sess.Terminated():
	}

	// Graceful drain: readiness flips first, the listener stops
	// accepting, in-flight requests finish (bounded), then the batcher
	// flushes and the journal compacts. sess.Close (deferred) writes
	// the ledger entry after.
	srv.MarkDraining()
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		sess.AddWarning(fmt.Sprintf("drain: http shutdown incomplete: %v", err))
		hs.Close()
	}
	if err := srv.Drain(); err != nil {
		return fmt.Errorf("jobgraphd: drain: %v", err)
	}
	st := srv.Stats()
	fmt.Fprintf(os.Stderr, "jobgraphd drained cleanly: %d classified, %d rows accepted, %d pending preserved\n",
		st.Classified, st.AcceptedRows, st.Pending)
	return nil
}

// bootModel loads the model file when it exists; otherwise it trains
// one from the trace (or a generated workload) and, when -model was
// given, saves the result for the next boot. With ann set, the training
// run also builds the sketch-LSH similarity index (persisted to
// annIndexPath when given, mirroring -model); a prebuilt model skips
// training, so ann then requires an existing index file.
func bootModel(pf *cli.PipelineFlags, modelPath, annIndexPath, tracePath string, gen, sample int, seed int64, groups int, ann bool) (*core.Model, *wl.ANNIndex, error) {
	lg := obs.Default().Logger()
	var ix *wl.ANNIndex
	if annIndexPath != "" {
		if _, err := os.Stat(annIndexPath); err == nil {
			ix, err = loadANNFile(annIndexPath)
			if err != nil {
				return nil, nil, err
			}
			lg.Info("ann index loaded", "path", annIndexPath, "jobs", ix.Len())
		}
	}
	if modelPath != "" {
		if _, err := os.Stat(modelPath); err == nil {
			m, err := core.LoadModel(modelPath)
			if err != nil {
				return nil, nil, err
			}
			lg.Info("model loaded", "path", modelPath, "groups", len(m.Groups),
				"trained_on", m.TrainedOn, "built_at", m.BuiltAt)
			if ann && ix == nil {
				return nil, nil, fmt.Errorf("-ann with a prebuilt model needs an existing -ann-index file (remove %s to retrain both)", modelPath)
			}
			return m, ix, nil
		}
	}

	readOpts, err := pf.ReadOptions()
	if err != nil {
		return nil, nil, err
	}
	jobs, istats, err := cli.LoadOrGenerateOpts(tracePath, gen, seed, readOpts)
	if err != nil {
		return nil, nil, err
	}
	cfg := core.DefaultConfig(cli.TraceWindow(), seed)
	cfg.SampleSize = sample
	cfg.Groups = groups
	cfg.Ingest = istats
	cfg.ANN = ann && ix == nil
	pf.Configure(&cfg)
	an, err := core.Run(jobs, cfg)
	if err != nil {
		return nil, nil, err
	}
	m, err := core.ExtractModel(an, cfg.Conflate)
	if err != nil {
		return nil, nil, err
	}
	lg.Info("model trained", "groups", len(m.Groups), "trained_on", m.TrainedOn)
	if modelPath != "" {
		if err := m.Save(modelPath); err != nil {
			return nil, nil, err
		}
		lg.Info("model saved", "path", modelPath)
	}
	if an.ANNIndex != nil {
		ix = an.ANNIndex
		lg.Info("ann index built", "jobs", ix.Len())
		if annIndexPath != "" {
			if err := saveANNFile(ix, annIndexPath); err != nil {
				return nil, nil, err
			}
			lg.Info("ann index saved", "path", annIndexPath)
		}
	}
	return m, ix, nil
}

func loadANNFile(path string) (*wl.ANNIndex, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return wl.LoadANNIndex(f)
}

// saveANNFile writes the index via a same-directory temp file and
// rename, so a crash mid-write never leaves a torn index for the next
// boot (or a reload) to trip over.
func saveANNFile(ix *wl.ANNIndex, path string) error {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if err := ix.Save(f); err != nil {
		f.Close()
		os.Remove(f.Name())
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return err
	}
	return os.Rename(f.Name(), path)
}
