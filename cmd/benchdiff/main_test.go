package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"jobgraph/internal/engine"
	"jobgraph/internal/ledger"
	"jobgraph/internal/obs"
)

func writeSnapshot(t *testing.T, dir, name string, stageMs float64) string {
	t.Helper()
	r := obs.NewRegistry()
	r.RecordSpan([]string{"pipeline"}, 200*time.Millisecond, 1<<20)
	r.RecordSpan([]string{"pipeline", "wl.matrix"}, time.Duration(stageMs*float64(time.Millisecond)), 1<<19)
	path := filepath.Join(dir, name)
	if err := r.WriteSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestExecuteFailsOnRegression is the gate's contract: a synthetic
// above-threshold regression makes execute return an error, which
// cli.Run maps to a non-zero exit.
func TestExecuteFailsOnRegression(t *testing.T) {
	dir := t.TempDir()
	cfg := config{
		basePath: writeSnapshot(t, dir, "base.json", 50),
		curPath:  writeSnapshot(t, dir, "cur.json", 100), // +100% > 25%
		opt:      ledger.Options{TimePct: 0.25, MinMs: 5},
	}
	var out bytes.Buffer
	err := execute(cfg, &out)
	if err == nil {
		t.Fatalf("regression passed the gate; report:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "regressed") {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(out.String(), "pipeline/wl.matrix") {
		t.Fatalf("report lacks the regressed stage:\n%s", out.String())
	}
}

func TestExecutePassesWithinThreshold(t *testing.T) {
	dir := t.TempDir()
	cfg := config{
		basePath: writeSnapshot(t, dir, "base.json", 50),
		curPath:  writeSnapshot(t, dir, "cur.json", 55), // +10% < 25%
		opt:      ledger.Options{TimePct: 0.25, MinMs: 5},
	}
	var out bytes.Buffer
	if err := execute(cfg, &out); err != nil {
		t.Fatalf("clean diff failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "no regressions above threshold") {
		t.Fatalf("report:\n%s", out.String())
	}
}

func TestExecuteWarnOnly(t *testing.T) {
	dir := t.TempDir()
	cfg := config{
		basePath: writeSnapshot(t, dir, "base.json", 50),
		curPath:  writeSnapshot(t, dir, "cur.json", 200),
		opt:      ledger.Options{TimePct: 0.25, MinMs: 5},
		warnOnly: true,
	}
	var out bytes.Buffer
	if err := execute(cfg, &out); err != nil {
		t.Fatalf("warn-only still failed: %v", err)
	}
	if !strings.Contains(out.String(), "regressed") {
		t.Fatalf("warn-only hid the regression:\n%s", out.String())
	}
}

func TestExecuteLedgerMode(t *testing.T) {
	dir := t.TempDir()
	lpath := filepath.Join(dir, "ledger.jsonl")
	mk := func(runID string, stageMs float64) ledger.Entry {
		r := obs.NewRegistry()
		r.RecordSpan([]string{"pipeline"}, 200*time.Millisecond, 1<<20)
		r.RecordSpan([]string{"pipeline", "wl.matrix"}, time.Duration(stageMs*float64(time.Millisecond)), 1<<19)
		return ledger.Entry{
			RunID: runID, Command: "reproduce", ConfigHash: "same",
			StartedAt: time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC),
			Metrics:   r.Snapshot(),
		}
	}
	for _, e := range []ledger.Entry{mk("baseline", 50), mk("mid", 52), mk("head", 120)} {
		if err := ledger.Append(lpath, e); err != nil {
			t.Fatal(err)
		}
	}

	// Default: oldest vs newest → regression.
	cfg := config{ledgerPath: lpath, opt: ledger.Options{TimePct: 0.25, MinMs: 5}}
	var out bytes.Buffer
	if err := execute(cfg, &out); err == nil {
		t.Fatalf("head regression passed:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "base: run baseline") || !strings.Contains(out.String(), "cur:  run head") {
		t.Fatalf("entry labels missing:\n%s", out.String())
	}

	// Explicit run selection: baseline vs mid → clean.
	cfg.curRun = "mid"
	out.Reset()
	if err := execute(cfg, &out); err != nil {
		t.Fatalf("baseline-vs-mid failed: %v\n%s", err, out.String())
	}

	// Unknown run id errors.
	cfg.curRun = "nope"
	if err := execute(cfg, &out); err == nil || !strings.Contains(err.Error(), "not found") {
		t.Fatalf("unknown run = %v", err)
	}
}

func TestExecuteInputValidation(t *testing.T) {
	var out bytes.Buffer
	if err := execute(config{}, &out); err == nil {
		t.Fatal("no inputs accepted")
	}
	dir := t.TempDir()
	base := writeSnapshot(t, dir, "base.json", 50)
	if err := execute(config{basePath: base}, &out); err == nil {
		t.Fatal("-base without -cur accepted")
	}
	// A non-snapshot JSON file is rejected by the schema check.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"other/v9"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := execute(config{basePath: bad, curPath: base}, &out); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("schema mismatch = %v", err)
	}
	// Single-entry ledger cannot be compared.
	lpath := filepath.Join(dir, "one.jsonl")
	r := obs.NewRegistry()
	r.RecordSpan([]string{"pipeline"}, time.Millisecond, 0)
	if err := ledger.Append(lpath, ledger.Entry{RunID: "only", Metrics: r.Snapshot()}); err != nil {
		t.Fatal(err)
	}
	if err := execute(config{ledgerPath: lpath}, &out); err == nil {
		t.Fatal("single-run ledger accepted")
	}
}

// TestSnapshotFilesRemainParseable guards the coupling benchdiff relies
// on: obs.WriteSnapshotFile output must parse back as obs.Snapshot.
func TestSnapshotFilesRemainParseable(t *testing.T) {
	dir := t.TempDir()
	path := writeSnapshot(t, dir, "m.json", 50)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Schema != obs.SnapshotSchema {
		t.Fatalf("schema = %q", snap.Schema)
	}
}

// TestExecuteReportsCacheStats: a current run with per-stage engine
// cache counters gets a cache table, and core stages missing from the
// span tree are annotated cached vs. not reached.
func TestExecuteReportsCacheStats(t *testing.T) {
	dir := t.TempDir()
	basePath := writeSnapshot(t, dir, "base.json", 50)

	r := obs.NewRegistry()
	r.RecordSpan([]string{"pipeline"}, 200*time.Millisecond, 1<<20)
	r.RecordSpan([]string{"pipeline", "wl.matrix"}, 55*time.Millisecond, 1<<19)
	r.Counter(engine.StageCacheMetricPrefix + "dag.jobs.hits").Add(1)
	r.Counter(engine.StageCacheMetricPrefix + "dag.jobs.bytes_read").Add(4096)
	r.Counter(engine.StageCacheMetricPrefix + "wl.matrix.misses").Add(1)
	r.Counter(engine.StageCacheMetricPrefix + "wl.matrix.bytes_written").Add(8192)
	curPath := filepath.Join(dir, "cur.json")
	if err := r.WriteSnapshotFile(curPath); err != nil {
		t.Fatal(err)
	}

	cfg := config{
		basePath: basePath,
		curPath:  curPath,
		opt:      ledger.Options{TimePct: 0.25, MinMs: 5},
	}
	var out bytes.Buffer
	if err := execute(cfg, &out); err != nil {
		t.Fatalf("execute: %v\n%s", err, out.String())
	}
	rep := out.String()
	if !strings.Contains(rep, "engine cache (current run):") {
		t.Fatalf("report lacks cache table:\n%s", rep)
	}
	for _, want := range []string{"dag.jobs", "4096", "8192"} {
		if !strings.Contains(rep, want) {
			t.Errorf("cache table missing %q:\n%s", want, rep)
		}
	}
	if !strings.Contains(rep, "dag.jobs (cached)") {
		t.Errorf("missing-stage note lacks cached annotation:\n%s", rep)
	}
	if !strings.Contains(rep, "sampling.filter (not reached)") {
		t.Errorf("missing-stage note lacks not-reached annotation:\n%s", rep)
	}
}
