// Command benchdiff is the perf-regression gate: it diffs the
// per-stage wall-time and allocation profile of two instrumented runs
// and exits non-zero when any stage regressed beyond the threshold.
// Inputs are either two metrics.json snapshots or a run ledger
// (results/runs/ledger.jsonl), where the default comparison is the
// newest entry against the oldest (HEAD vs ledger baseline).
//
// Usage:
//
//	benchdiff -base results/metrics.json -cur out/metrics.json
//	benchdiff -ledger results/runs/ledger.jsonl
//	benchdiff -ledger ledger.jsonl -base-run 1a2b... -cur-run 3c4d...
//	benchdiff ... -threshold 0.25 -alloc-threshold 0.5 -min-ms 5 -warn-only
//
// CI runs it warn-only against the committed baseline; locally,
// `make benchdiff` compares a fresh run to the checked-in snapshot.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"jobgraph/internal/cli"
	"jobgraph/internal/engine"
	"jobgraph/internal/ledger"
	"jobgraph/internal/obs"
	"jobgraph/internal/stages"
)

func main() { cli.Run(run) }

type config struct {
	basePath   string
	curPath    string
	ledgerPath string
	baseRun    string
	curRun     string
	opt        ledger.Options
	warnOnly   bool
}

func run() error {
	var cfg config
	def := ledger.DefaultOptions()
	flag.StringVar(&cfg.basePath, "base", "", "baseline metrics.json snapshot")
	flag.StringVar(&cfg.curPath, "cur", "", "current metrics.json snapshot")
	flag.StringVar(&cfg.ledgerPath, "ledger", "", "run ledger JSONL (alternative to -base/-cur)")
	flag.StringVar(&cfg.baseRun, "base-run", "", "ledger run id to use as baseline (default: oldest entry)")
	flag.StringVar(&cfg.curRun, "cur-run", "", "ledger run id to compare (default: newest entry)")
	flag.Float64Var(&cfg.opt.TimePct, "threshold", def.TimePct, "wall-time regression threshold (fraction, 0 disables)")
	flag.Float64Var(&cfg.opt.AllocPct, "alloc-threshold", def.AllocPct, "allocation regression threshold (fraction, 0 disables)")
	flag.Float64Var(&cfg.opt.MinMs, "min-ms", def.MinMs, "ignore stages faster than this in both runs")
	flag.BoolVar(&cfg.warnOnly, "warn-only", false, "report regressions but exit 0")
	flag.Parse()
	return execute(cfg, os.Stdout)
}

// execute loads the two snapshots, prints the stage-delta report and
// returns an error (non-zero exit under cli.Run) when the gate fails.
func execute(cfg config, w io.Writer) error {
	base, cur, err := load(cfg, w)
	if err != nil {
		return fmt.Errorf("benchdiff: %v", err)
	}
	rep := ledger.Diff(base, cur, cfg.opt)
	fmt.Fprint(w, rep.String())
	stats := stageCacheStats(cur)
	if len(stats) > 0 {
		fmt.Fprintf(w, "engine cache (current run):\n")
		fmt.Fprintf(w, "  %-24s %6s %6s %12s %14s\n", "stage", "hits", "miss", "bytes_read", "bytes_written")
		for _, cs := range stats {
			fmt.Fprintf(w, "  %-24s %6d %6d %12d %14d\n",
				cs.stage, cs.hits, cs.misses, cs.bytesRead, cs.bytesWritten)
		}
	}
	if missing := missingCoreStages(cur); len(missing) > 0 {
		fmt.Fprintf(w, "note: core stages not timed in current run: %s\n",
			strings.Join(annotateCached(missing, stats), ", "))
	}
	if n := len(rep.Regressions); n > 0 && !cfg.warnOnly {
		return fmt.Errorf("benchdiff: %d stage(s) regressed beyond threshold", n)
	}
	return nil
}

// cacheStat is one stage's engine cache traffic, aggregated from the
// flat engine.cache.stage.<stage>.<kind> counters.
type cacheStat struct {
	stage        string
	hits, misses int64
	bytesRead    int64
	bytesWritten int64
}

// stageCacheStats extracts per-stage engine cache counters from a
// snapshot, sorted by stage name.
func stageCacheStats(snap obs.Snapshot) []cacheStat {
	byStage := make(map[string]*cacheStat)
	for name, v := range snap.Counters {
		rest, ok := strings.CutPrefix(name, engine.StageCacheMetricPrefix)
		if !ok {
			continue
		}
		i := strings.LastIndex(rest, ".")
		if i <= 0 {
			continue
		}
		stage, kind := rest[:i], rest[i+1:]
		cs := byStage[stage]
		if cs == nil {
			cs = &cacheStat{stage: stage}
			byStage[stage] = cs
		}
		switch kind {
		case "hits":
			cs.hits = v
		case "misses":
			cs.misses = v
		case "bytes_read":
			cs.bytesRead = v
		case "bytes_written":
			cs.bytesWritten = v
		}
	}
	out := make([]cacheStat, 0, len(byStage))
	for _, cs := range byStage {
		out = append(out, *cs)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].stage < out[j].stage })
	return out
}

// annotateCached marks each missing stage with why it has no timing:
// "cached" when the cache counters show a hit, "not reached" otherwise.
func annotateCached(missing []string, stats []cacheStat) []string {
	hits := make(map[string]bool, len(stats))
	for _, cs := range stats {
		if cs.hits > 0 {
			hits[cs.stage] = true
		}
	}
	out := make([]string, len(missing))
	for i, name := range missing {
		if hits[name] {
			out[i] = name + " (cached)"
		} else {
			out[i] = name + " (not reached)"
		}
	}
	return out
}

// missingCoreStages lists the canonical pipeline stages (stages.Core)
// absent from the snapshot's "pipeline" span — stages the wall-time
// gate cannot see because they were cache-loaded or never reached.
// Informational only: a warm run legitimately skips stages.
func missingCoreStages(snap obs.Snapshot) []string {
	have := make(map[string]bool)
	for _, s := range snap.Spans {
		if s.Name != stages.Pipeline {
			continue
		}
		for _, c := range s.Children {
			have[c.Name] = true
		}
	}
	var missing []string
	for _, name := range stages.Core {
		if !have[name] {
			missing = append(missing, name)
		}
	}
	return missing
}

func load(cfg config, w io.Writer) (base, cur obs.Snapshot, err error) {
	switch {
	case cfg.ledgerPath != "":
		entries, err := ledger.Read(cfg.ledgerPath)
		if err != nil {
			return base, cur, err
		}
		if len(entries) < 2 && (cfg.baseRun == "" || cfg.curRun == "") {
			return base, cur, fmt.Errorf("ledger %s has %d run(s); need two to compare", cfg.ledgerPath, len(entries))
		}
		be, err := pick(entries, cfg.baseRun, 0)
		if err != nil {
			return base, cur, err
		}
		ce, err := pick(entries, cfg.curRun, len(entries)-1)
		if err != nil {
			return base, cur, err
		}
		if be.RunID == ce.RunID {
			return base, cur, fmt.Errorf("baseline and current are the same run %s", be.RunID)
		}
		fmt.Fprintf(w, "base: run %s (%s, git %s, %s)\n", be.RunID, be.Command, short(be.GitSHA), be.StartedAt.Format("2006-01-02 15:04:05"))
		fmt.Fprintf(w, "cur:  run %s (%s, git %s, %s)\n", ce.RunID, ce.Command, short(ce.GitSHA), ce.StartedAt.Format("2006-01-02 15:04:05"))
		if be.ConfigHash != ce.ConfigHash {
			fmt.Fprintf(w, "note: config hashes differ (%s vs %s) — deltas may reflect configuration, not code\n",
				be.ConfigHash, ce.ConfigHash)
		}
		if be.Host.Hostname != ce.Host.Hostname || be.Host.NumCPU != ce.Host.NumCPU {
			fmt.Fprintf(w, "note: hosts differ — wall times are not directly comparable\n")
		}
		// A run whose stall watchdog tripped spent part of its wall time
		// wedged; its timings measure the stall, not the code.
		if be.FlightDump != "" {
			fmt.Fprintf(w, "note: baseline run tripped the stall watchdog (flight dump %s) — its timings describe a stalled run\n", be.FlightDump)
		}
		if ce.FlightDump != "" {
			fmt.Fprintf(w, "note: current run tripped the stall watchdog (flight dump %s) — its timings describe a stalled run\n", ce.FlightDump)
		}
		return be.Metrics, ce.Metrics, nil
	case cfg.basePath != "" && cfg.curPath != "":
		if base, err = readSnapshot(cfg.basePath); err != nil {
			return base, cur, err
		}
		if cur, err = readSnapshot(cfg.curPath); err != nil {
			return base, cur, err
		}
		return base, cur, nil
	default:
		return base, cur, fmt.Errorf("give either -ledger, or both -base and -cur")
	}
}

// pick resolves a ledger entry by run id, falling back to the given
// position.
func pick(entries []ledger.Entry, runID string, fallback int) (ledger.Entry, error) {
	if runID == "" {
		return entries[fallback], nil
	}
	e, ok := ledger.Find(entries, runID)
	if !ok {
		return ledger.Entry{}, fmt.Errorf("run %s not found in ledger", runID)
	}
	return e, nil
}

func readSnapshot(path string) (obs.Snapshot, error) {
	var snap obs.Snapshot
	data, err := os.ReadFile(path)
	if err != nil {
		return snap, err
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		return snap, fmt.Errorf("parse %s: %w", path, err)
	}
	if snap.Schema != obs.SnapshotSchema {
		return snap, fmt.Errorf("%s: schema %q, want %q", path, snap.Schema, obs.SnapshotSchema)
	}
	return snap, nil
}

func short(sha string) string {
	if sha == "" {
		return "unknown"
	}
	if len(sha) > 12 {
		return sha[:12]
	}
	return sha
}
