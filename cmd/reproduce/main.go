// Command reproduce runs every experiment in the paper end-to-end on a
// synthetic trace and prints paper-reported versus measured values for
// each figure, plus the ablations described in DESIGN.md. Its output is
// the source for EXPERIMENTS.md.
//
// Usage:
//
//	reproduce [-trace batch_task.csv | -gen 20000] [-seed 1] [-out results/]
//	          [-workers N] [-cache-dir .jobgraph-cache] [-no-cache] [-ann]
//	          [-v] [-log-json] [-debug-addr localhost:6060]
//	          [-trace-out trace.json] [-ledger results/runs/ledger.jsonl]
//
// -workers spreads the parallel stages (trace decode, job grouping,
// candidate filtering, per-job DAG metrics, the WL kernel matrix)
// across that many goroutines; 0 uses every CPU and 1 forces the
// sequential pipeline, which produces bit-identical output.
//
// -cache-dir persists completed pipeline-stage artifacts to a
// content-addressed store and reuses them on re-runs whose upstream
// configuration matches; -no-cache forces a cold run for baselines.
//
// With -out, a metrics.json snapshot of every pipeline counter, span
// and histogram is written next to the CSV artifacts. -trace-out emits
// a timeline that loads in ui.perfetto.dev, and -ledger appends the
// run's snapshot to the JSONL history cmd/benchdiff compares.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"jobgraph/internal/cli"
	"jobgraph/internal/cluster"
	"jobgraph/internal/coloc"
	"jobgraph/internal/core"
	"jobgraph/internal/dag"
	"jobgraph/internal/features"
	"jobgraph/internal/ged"
	"jobgraph/internal/pattern"
	"jobgraph/internal/report"
	"jobgraph/internal/resource"
	"jobgraph/internal/sampling"
	"jobgraph/internal/sched"
	"jobgraph/internal/trace"
	"jobgraph/internal/tracegen"
	"jobgraph/internal/wl"
)

func main() { cli.Run(run) }

func run() error {
	var (
		tracePath = flag.String("trace", "", "batch_task CSV (.gz supported; empty: generate)")
		gen       = flag.Int("gen", 20000, "jobs to generate when no trace given")
		seed      = flag.Int64("seed", 1, "RNG seed")
		outDir    = flag.String("out", "", "optional output directory for CSV artifacts and metrics.json")
		ann       = flag.Bool("ann", false, "also sketch the sample and build the banded-LSH index (wl.sketch/wl.annindex stages)")
	)
	pf := cli.RegisterPipelineFlags("reproduce", true)
	flag.Parse()

	sess, err := pf.Start()
	if err != nil {
		return fmt.Errorf("reproduce: %v", err)
	}
	defer sess.Close()
	defer pf.Close()

	readOpts, err := pf.ReadOptions()
	if err != nil {
		return fmt.Errorf("reproduce: %v", err)
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return fmt.Errorf("reproduce: %v", err)
		}
		// Deferred so the snapshot also lands when a later stage fails.
		defer func() {
			if err := cli.WriteMetrics(*outDir); err != nil {
				fmt.Fprintf(os.Stderr, "reproduce: metrics snapshot: %v\n", err)
			}
		}()
	}

	jobs, istats, err := cli.LoadOrGenerateOpts(*tracePath, *gen, *seed, readOpts)
	if err != nil {
		return fmt.Errorf("reproduce: %v", err)
	}
	if istats != nil && (istats.BadRows > 0 || istats.Partial) {
		fmt.Printf("== Ingest ==\n%s\n\n", istats.Summary())
	}

	cands, fstats, err := sampling.FilterParallel(jobs, sampling.PaperCriteria(cli.TraceWindow()), *pf.Workers)
	if err != nil {
		return fmt.Errorf("reproduce: %v", err)
	}
	graphs := sampling.Graphs(cands)
	fmt.Printf("== Trace ==\n%d jobs generated, %d eligible DAG jobs\n", len(jobs), len(cands))
	fmt.Printf("rejections: integrity=%d availability=%d non-DAG=%d no-window=%d\n\n",
		fstats.NotTerminated, fstats.OutsideWindow, fstats.NonDAG, fstats.NoWindow)

	cfg := core.DefaultConfig(cli.TraceWindow(), *seed)
	cfg.Ingest = istats
	cfg.ANN = *ann
	pf.Configure(&cfg)
	an, err := core.Run(jobs, cfg)
	if err != nil {
		return fmt.Errorf("reproduce: %v", err)
	}
	for _, w := range an.Warnings {
		sess.AddWarning(w)
	}
	if len(an.Warnings) > 0 {
		fmt.Printf("== Degraded run ==\n")
		for _, w := range an.Warnings {
			fmt.Printf("warning: %s\n", w)
		}
		fmt.Println()
	}

	if an.ANNIndex != nil {
		fmt.Printf("== ANN ==\nsketch index over %d jobs (%d hashes, %d bands)\n\n",
			an.ANNIndex.Len(), an.ANNIndex.Options().Hashes, an.ANNIndex.Options().Bands)
	}

	runE0(jobs)
	runE1(an)
	runE2(graphs, *outDir)
	runE3E4(graphs)
	runE5(graphs)
	runE6(an)
	runE7(an, *outDir)
	runE8E9(an, *outDir)
	runA1(an)
	runA2(an)
	runA3(an)
	runA4(an, *seed)
	runA5(cands, *seed)
	runA6(an)
	runA7(jobs, *seed)
	runA8(an)
	runE10(graphs)
	runE11(an, cands, jobs, *seed)
	runE12(an, cands, *seed)
	return nil
}

func must(err error) {
	if err != nil {
		cli.Fatalf("reproduce: %v", err)
	}
}

func runE0(jobs []trace.Job) {
	fmt.Println("== E0 (§II-B): dependency share of the batch workload ==")
	split, err := resource.SplitByDependency(jobs)
	must(err)
	fmt.Printf("DAG jobs: %.1f%% of jobs, %.1f%% of CPU-time, %.1f%% of memory-time\n",
		100*split.DAGJobShare(), 100*split.DAGCPUShare(), 100*split.DAGMemShare())
	fmt.Println("paper: ~50% of batch jobs have dependencies and consume 70-80% of resources")
	fmt.Println()
}

func runE1(an *core.Analysis) {
	fmt.Println("== E1 (Fig 2): job-level DAG abstraction ==")
	fmt.Printf("sample of %d jobs; first job (%s) level structure:\n%s",
		len(an.Graphs), an.Graphs[0].JobID, an.Graphs[0].ASCII())
	fmt.Printf("(DOT renderings available via Fig2DOT / clusterjobs -dot-dir)\n\n")
}

func runE2(graphs []*dag.Graph, outDir string) {
	fmt.Println("== E2 (Fig 3): size distribution before/after conflation ==")
	tbl, err := core.Fig3Conflation(graphs)
	must(err)
	fmt.Println(tbl)
	fmt.Println("paper: the ratio of smaller jobs increases after the merge operation")
	writeCSV(outDir, "fig3_conflation.csv", tbl)
	fmt.Println()
}

func runE3E4(graphs []*dag.Graph) {
	fmt.Println("== E3/E4 (Figs 4/5): per-size-group features ==")
	for _, conflated := range []bool{false, true} {
		rows, err := core.FigSizeGroupFeatures(graphs, conflated)
		must(err)
		title := "Fig 4: before conflation"
		if conflated {
			title = "Fig 5: after conflation"
		}
		fmt.Println(core.FigSizeGroupTable(rows, title))
	}
	fmt.Println("paper: job counts decrease with size; max critical path 2-8, sub-linear;")
	fmt.Println("       max width grows with size (extreme: 30 of 31 tasks parallel)")
	fmt.Println()
}

func runE5(graphs []*dag.Graph) {
	fmt.Println("== E5 (§V-B): pattern census ==")
	tbl, census, err := core.PatternCensusTable(graphs)
	must(err)
	fmt.Println(tbl)
	fmt.Printf("paper: chain 58%%, inverted triangle 37%%; measured: chain %.1f%%, inverted triangle %.1f%%\n\n",
		100*census.Fraction(pattern.Chain), 100*census.Fraction(pattern.InvertedTriangle))
}

func runE6(an *core.Analysis) {
	fmt.Println("== E6 (Fig 6): M/J/R task-type distribution ==")
	var m, j, r int
	for _, g := range an.Graphs {
		c := g.TypeCounts()
		m += c["M"]
		j += c["J"]
		r += c["R"]
	}
	fmt.Printf("aggregate over %d jobs: M=%d J=%d R=%d\n", len(an.Graphs), m, j, r)
	fmt.Println("paper: chains deploy more R than M beyond 4 tasks; joins appear in multi-input middles")
	models, _, err := core.ModelCensusTable(an.Graphs)
	must(err)
	fmt.Println(models)
	fmt.Println("paper: plain Map-Reduce dominates small jobs; larger jobs combine")
	fmt.Println("       Map-Reduce and Map-Join-Reduce frameworks")
	fmt.Println()
}

func runE7(an *core.Analysis, outDir string) {
	fmt.Println("== E7 (Fig 7): WL similarity map ==")
	n := an.Similarity.Rows
	var sum float64
	exactOnes := 0
	for i := 0; i < n; i++ {
		for jj := 0; jj < n; jj++ {
			v := an.Similarity.At(i, jj)
			sum += v
			if i != jj && v == 1 {
				exactOnes++
			}
		}
	}
	fmt.Printf("%dx%d matrix, mean similarity %.3f, %d exact-1.0 off-diagonal pairs\n",
		n, n, sum/float64(n*n), exactOnes/2)
	fmt.Println("paper: small chain jobs form exact-similarity blocks; values in [0,1]")
	if outDir != "" {
		f, err := os.Create(filepath.Join(outDir, "fig7_similarity.csv"))
		must(err)
		must(report.WriteMatrixCSV(f, an.Similarity))
		must(f.Close())
	}
	fmt.Println()
}

func runE8E9(an *core.Analysis, outDir string) {
	fmt.Println("== E8/E9 (Figs 8/9): spectral groups ==")
	tbl := core.Fig9GroupTable(an)
	fmt.Println(tbl)
	plots, err := core.Fig9BoxPlots(an)
	must(err)
	fmt.Println(plots)
	fmt.Printf("silhouette: %.3f\n", an.Silhouette)
	if k, err := cluster.ChooseK(an.Similarity, 2, 10); err == nil {
		fmt.Printf("eigengap-selected K: %d (paper fixes K=5 by inspection)\n", k)
	}
	rho, err := core.SizeWidthCorrelation(an)
	must(err)
	fmt.Printf("size-width Spearman: %.3f (paper: positively correlated)\n", rho)
	fmt.Println("paper: group A holds ~75% of jobs, 90.6% short, 91% chains; B mean size ~1.55x A;")
	fmt.Println("       D has the largest structural metrics; C/E are diffuse (divergent)")
	writeCSV(outDir, "fig9_groups.csv", tbl)
	fmt.Println()
	fmt.Println(core.GroupResourceTable(an))
	fmt.Println("extension: per-group demand profiles (the paper's stated future work)")
	fmt.Println()
}

func runA1(an *core.Analysis) {
	fmt.Println("== A1: WL iteration-depth ablation ==")
	// Compare the similarity matrix at increasing h against h=5.
	graphs := an.Graphs
	ref, err := wl.KernelMatrix(graphs, wl.Options{Iterations: 5, UseTypeLabels: true}, 0)
	must(err)
	for h := 0; h <= 4; h++ {
		m, err := wl.KernelMatrix(graphs, wl.Options{Iterations: h, UseTypeLabels: true}, 0)
		must(err)
		var diff, cnt float64
		for i := range m.Data {
			d := m.Data[i] - ref.Data[i]
			if d < 0 {
				d = -d
			}
			diff += d
			cnt++
		}
		fmt.Printf("h=%d: mean |sim - sim_h5| = %.4f\n", h, diff/cnt)
	}
	fmt.Println("expected: differences shrink as h grows (refinement converges)")
	fmt.Println()
}

func runA2(an *core.Analysis) {
	fmt.Println("== A2: GED baseline vs WL kernel ==")
	// Use the small jobs only (exact GED is exponential — the paper's
	// argument for kernels).
	var small []*dag.Graph
	for _, g := range an.Graphs {
		if g.Size() <= 7 {
			small = append(small, g)
		}
		if len(small) == 12 {
			break
		}
	}
	if len(small) < 4 {
		fmt.Println("not enough small jobs for exact GED; skipping")
		return
	}
	start := time.Now()
	pairs := 0
	var exactSum float64
	for i := 0; i < len(small); i++ {
		for j := i + 1; j < len(small); j++ {
			d, err := ged.Exact(small[i], small[j], ged.DefaultCosts(), 0)
			must(err)
			exactSum += d
			pairs++
		}
	}
	gedTime := time.Since(start)

	start = time.Now()
	var bpSum float64
	for i := 0; i < len(small); i++ {
		for j := i + 1; j < len(small); j++ {
			d, err := ged.Bipartite(small[i], small[j], ged.DefaultCosts())
			must(err)
			bpSum += d
		}
	}
	bpTime := time.Since(start)

	start = time.Now()
	_, err := wl.KernelMatrix(small, wl.DefaultOptions(), 1)
	must(err)
	wlTime := time.Since(start)
	fmt.Printf("%d jobs (size<=7), %d pairs:\n", len(small), pairs)
	fmt.Printf("exact GED     %10v (mean distance %.2f)\n", gedTime, exactSum/float64(pairs))
	fmt.Printf("bipartite GED %10v (mean distance %.2f, upper bound)\n", bpTime, bpSum/float64(pairs))
	fmt.Printf("WL matrix     %10v (%.0fx faster than exact)\n", wlTime, float64(gedTime)/float64(wlTime))
	fmt.Println("paper: edit distance cost is exponential in nodes — less effective than kernels")
	fmt.Println()
}

func runA3(an *core.Analysis) {
	fmt.Println("== A3: kernel matrix parallel fan-out ==")
	for _, w := range []int{1, 2, 4, 8} {
		start := time.Now()
		_, err := wl.KernelMatrix(an.Graphs, wl.DefaultOptions(), w)
		must(err)
		fmt.Printf("workers=%d: %v\n", w, time.Since(start))
	}
	fmt.Println()
}

func runA4(an *core.Analysis, seed int64) {
	fmt.Println("== A4: clustering method comparison (reference: spectral-on-WL) ==")
	k := len(an.Groups)

	// Feature-space k-means (the prior-work baseline).
	pts, err := features.Matrix(an.Graphs)
	must(err)
	_, _, err = features.Standardize(pts)
	must(err)
	km, err := cluster.KMeans(pts, cluster.KMeansOptions{K: k, Seed: seed})
	must(err)

	// Topology-aware alternatives on the same WL kernel distances.
	dist, err := cluster.DistanceFromSimilarity(an.Similarity)
	must(err)
	kmed, err := cluster.KMedoids(dist, cluster.KMedoidsOptions{K: k, Seed: seed})
	must(err)
	hier, err := cluster.Hierarchical(dist, k, cluster.AverageLinkage)
	must(err)

	for _, alt := range []struct {
		name   string
		labels []int
	}{
		{"kmeans-features", km.Labels},
		{"kmedoids-WL", kmed.Labels},
		{"hierarchical-WL", hier.Labels},
	} {
		ari, err := cluster.ARI(alt.labels, an.Labels)
		must(err)
		nmi, err := cluster.NMI(alt.labels, an.Labels)
		must(err)
		sil, err := cluster.Silhouette(dist, alt.labels)
		must(err)
		fmt.Printf("%-16s ARI=%.3f NMI=%.3f silhouette=%.3f\n", alt.name+":", ari, nmi, sil)
	}
	fmt.Printf("%-16s silhouette=%.3f\n", "spectral-WL:", an.Silhouette)
	fmt.Println("expected: WL-based methods largely agree with each other; the feature-space")
	fmt.Println("          baseline diverges — it sees sizes/durations, not topology")
	fmt.Println()
}

func runA5(cands []sampling.Candidate, seed int64) {
	fmt.Println("== A5: scheduling application ==")
	n := len(cands)
	if n > 500 {
		n = 500
	}
	specs := make([]sched.JobSpec, 0, n)
	for i := 0; i < n; i++ {
		g := cands[i].Graph
		cpd, err := g.CriticalPathDuration()
		must(err)
		start, _, _ := cands[i].Job.Window()
		// Compress the 8-day submission spread by 1000x so the cluster
		// actually contends — policies only differ under backlog.
		//
		// GroupPriority encodes the structural knowledge clustering
		// provides: jobs from short-critical-path groups (the dominant
		// small-chain group A) are predicted quick and boosted —
		// shortest-predicted-first, which minimizes mean completion.
		specs = append(specs, sched.JobSpec{
			Graph:         g,
			Arrival:       float64(start) / 1000,
			GroupPriority: -cpd,
		})
	}
	for _, pol := range []sched.Policy{sched.FIFO, sched.CriticalPathFirst, sched.GroupAware} {
		res, err := sched.Simulate(specs, sched.Options{Slots: 16, Policy: pol})
		must(err)
		fmt.Printf("%-14s mean completion %10.1fs  makespan %10.1fs\n",
			pol.String()+":", res.MeanCompletion, res.Makespan)
	}
	fmt.Println("expected: group-aware (predicted-short-first) cuts mean completion vs FIFO;")
	fmt.Println("          critical-path-first trades mean completion for makespan")
	fmt.Println()
	_ = seed
}

func runA6(an *core.Analysis) {
	fmt.Println("== A6: subtree vs shortest-path base kernel ==")
	sub, err := wl.KernelMatrix(an.Graphs, wl.Options{Iterations: 3, UseTypeLabels: true, Base: wl.BaseSubtree}, 0)
	must(err)
	sp, err := wl.KernelMatrix(an.Graphs, wl.Options{Iterations: 3, UseTypeLabels: true, Base: wl.BaseShortestPath}, 0)
	must(err)
	var diff, cnt float64
	for i := range sub.Data {
		d := sub.Data[i] - sp.Data[i]
		if d < 0 {
			d = -d
		}
		diff += d
		cnt++
	}
	fmt.Printf("mean |subtree - shortest-path| similarity: %.4f\n", diff/cnt)

	// Do both bases induce the same clustering?
	ka, err := cluster.Spectral(sub, cluster.SpectralOptions{K: 5, KMeans: cluster.KMeansOptions{Seed: 1}})
	must(err)
	kb, err := cluster.Spectral(sp, cluster.SpectralOptions{K: 5, KMeans: cluster.KMeansOptions{Seed: 1}})
	must(err)
	ari, err := cluster.ARI(ka.Labels, kb.Labels)
	must(err)
	fmt.Printf("clustering agreement across bases: ARI=%.3f\n", ari)
	fmt.Println("expected: high agreement — both bases capture the same coarse topology")
	fmt.Println()
}

func runA7(jobs []trace.Job, seed int64) {
	fmt.Println("== A7: conflate before kernel vs raw graphs ==")
	raw, err := core.Run(jobs, core.DefaultConfig(cli.TraceWindow(), seed))
	must(err)
	cfg := core.DefaultConfig(cli.TraceWindow(), seed)
	cfg.Conflate = true
	conf, err := core.Run(jobs, cfg)
	must(err)
	ari, err := cluster.ARI(raw.Labels, conf.Labels)
	must(err)
	fmt.Printf("clustering agreement raw vs conflated: ARI=%.3f\n", ari)
	fmt.Printf("silhouette raw %.3f vs conflated %.3f\n", raw.Silhouette, conf.Silhouette)
	fmt.Println("expected: conflation merges shard-level detail, so groups shift toward")
	fmt.Println("          stage-level topology (moderate but non-trivial agreement)")
	fmt.Println()
}

func runA8(an *core.Analysis) {
	fmt.Println("== A8: dictionary vs hashed feature extraction ==")
	opt := wl.DefaultOptions()
	for _, buckets := range []int{1 << 8, 1 << 12, 1 << 20} {
		rate, err := wl.CollisionRate(an.Graphs, opt, buckets)
		must(err)
		hashed, err := wl.HashedFeatures(an.Graphs, opt, buckets, 0)
		must(err)
		hm, err := wl.MatrixFromVectors(hashed, 0)
		must(err)
		var diff, cnt float64
		for i := range hm.Data {
			d := hm.Data[i] - an.Similarity.Data[i]
			if d < 0 {
				d = -d
			}
			diff += d
			cnt++
		}
		fmt.Printf("buckets=2^%-2d label collision rate %.4f, mean |sim diff| %.5f\n",
			log2(buckets), rate, diff/cnt)
	}
	fmt.Println("expected: distortion vanishes as the bucket space grows; hashing")
	fmt.Println("          removes the shared dictionary so embedding parallelizes")
	fmt.Println()
}

func log2(n int) int {
	k := 0
	for n > 1 {
		n >>= 1
		k++
	}
	return k
}

func runE10(graphs []*dag.Graph) {
	fmt.Println("== E10 (extension): dependency over-specification in task names ==")
	var totalEdges, totalRedundant, jobsWithRedundant int
	for _, g := range graphs {
		r, err := g.RedundantEdges()
		must(err)
		totalEdges += g.NumEdges()
		totalRedundant += r
		if r > 0 {
			jobsWithRedundant++
		}
	}
	fmt.Printf("%d of %d edges (%.1f%%) are transitively implied; %.1f%% of jobs carry at least one\n",
		totalRedundant, totalEdges, 100*float64(totalRedundant)/float64(totalEdges),
		100*float64(jobsWithRedundant)/float64(len(graphs)))
	fmt.Println("(the paper's own example R5_4_3_2_1 encodes 2 implied edges)")
	fmt.Println()
}

func runE11(an *core.Analysis, cands []sampling.Candidate, jobs []trace.Job, seed int64) {
	fmt.Println("== E11 (extension): group co-location on machines ==")
	// Label a slice of the eligible population by nearest group (the
	// AssignGroup classifier), then check which groups share machines.
	n := len(cands)
	if n > 1500 {
		n = 1500
	}
	jobGroup := make(map[string]string, n)
	var records []trace.TaskRecord
	for i := 0; i < n; i++ {
		gp, _, err := an.AssignGroup(cands[i].Graph)
		must(err)
		jobGroup[cands[i].Job.Name] = gp.Name
		records = append(records, cands[i].Job.Tasks...)
	}
	_ = jobs
	instances, err := tracegen.GenerateInstances(records, tracegen.DefaultInstanceConfig(seed))
	must(err)
	res, err := coloc.Analyze(instances, jobGroup)
	must(err)
	imb, err := resource.LoadImbalance(instances)
	must(err)
	fmt.Printf("%d machines host labeled instances; placement Gini %.3f\n", res.Machines, imb)
	for _, ov := range res.Overlaps {
		fmt.Printf("groups %s+%s: observed %4d machines, expected %7.1f, lift %.2f\n",
			ov.GroupA, ov.GroupB, ov.Observed, ov.Expected, ov.Lift)
	}
	fmt.Println("expected: lifts ~1 under the trace's random placement — the headroom a")
	fmt.Println("          group-aware placer could exploit")
	fmt.Println()
}

func runE12(an *core.Analysis, cands []sampling.Candidate, seed int64) {
	fmt.Println("== E12 (extension): placement policy vs co-location and imbalance ==")
	n := len(cands)
	if n > 1000 {
		n = 1000
	}
	pjobs := make([]sched.PlacementJob, 0, n)
	jobGroup := make(map[string]string, n)
	for i := 0; i < n; i++ {
		gp, _, err := an.AssignGroup(cands[i].Graph)
		must(err)
		total := 0
		for _, id := range cands[i].Graph.NodeIDs() {
			total += cands[i].Graph.Node(id).Instances
		}
		pjobs = append(pjobs, sched.PlacementJob{
			JobID:     cands[i].Job.Name,
			Group:     gp.Name,
			Instances: total,
		})
		jobGroup[cands[i].Job.Name] = gp.Name
	}
	for _, pol := range []sched.PlacementPolicy{
		sched.RandomPlacement, sched.LeastLoadedPlacement, sched.GroupPackedPlacement,
	} {
		recs, err := sched.Place(pjobs, sched.PlacementOptions{Machines: 400, Policy: pol, Seed: seed})
		must(err)
		gini, err := resource.LoadImbalance(recs)
		must(err)
		res, err := coloc.Analyze(recs, jobGroup)
		must(err)
		var lift float64
		for _, ov := range res.Overlaps {
			lift += ov.Lift
		}
		if len(res.Overlaps) > 0 {
			lift /= float64(len(res.Overlaps))
		}
		fmt.Printf("%-13s load Gini %.3f, mean cross-group lift %.2f\n", pol.String()+":", gini, lift)
	}
	fmt.Println("expected: least-loaded minimizes imbalance; group-packed drives cross-group")
	fmt.Println("          co-location to zero; random sits at lift ~1")
	fmt.Println()
}

func writeCSV(outDir, name string, tbl *report.Table) {
	if outDir == "" {
		return
	}
	f, err := os.Create(filepath.Join(outDir, name))
	must(err)
	must(tbl.WriteCSV(f))
	must(f.Close())
}
