// Command clusterjobs runs the full pipeline — filter, sample, WL
// kernel, spectral clustering — and prints the paper's Figure 9 group
// table plus each group's representative DAG (Figure 8) as Graphviz
// files.
//
// Usage:
//
//	clusterjobs [-trace batch_task.csv | -gen 10000] [-groups 5]
//	            [-sample 100] [-dot-dir reps/] [-workers N]
//	            [-cache-dir .jobgraph-cache] [-no-cache]
//	            [-lenient] [-v] [-log-json]
//	            [-debug-addr localhost:6060] [-trace-out trace.json]
//	            [-ledger results/runs/ledger.jsonl]
//
// With -cache-dir, completed stage artifacts are persisted to a
// content-addressed store: re-running with only downstream knobs
// changed (say -groups) reuses the cached kernel matrix, and an
// interrupted run resumes from its last completed stage. The printed
// analysis is identical either way.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"jobgraph/internal/cli"
	"jobgraph/internal/core"
)

func main() { cli.Run(run) }

func run() error {
	var (
		tracePath = flag.String("trace", "", "batch_task CSV (empty: generate)")
		gen       = flag.Int("gen", 10000, "jobs to generate when no trace given")
		sample    = flag.Int("sample", 100, "jobs to sample")
		seed      = flag.Int64("seed", 1, "RNG seed")
		groups    = flag.Int("groups", 5, "number of spectral groups")
		dotDir    = flag.String("dot-dir", "", "optional directory for representative DOT files")
	)
	pf := cli.RegisterPipelineFlags("clusterjobs", true)
	flag.Parse()

	sess, err := pf.Start()
	if err != nil {
		return fmt.Errorf("clusterjobs: %v", err)
	}
	defer sess.Close()
	defer pf.Close()

	readOpts, err := pf.ReadOptions()
	if err != nil {
		return fmt.Errorf("clusterjobs: %v", err)
	}
	jobs, istats, err := cli.LoadOrGenerateOpts(*tracePath, *gen, *seed, readOpts)
	if err != nil {
		return fmt.Errorf("clusterjobs: %v", err)
	}
	cfg := core.DefaultConfig(cli.TraceWindow(), *seed)
	cfg.SampleSize = *sample
	cfg.Groups = *groups
	cfg.Ingest = istats
	pf.Configure(&cfg)
	an, err := core.Run(jobs, cfg)
	if err != nil {
		return fmt.Errorf("clusterjobs: %v", err)
	}
	for _, w := range an.Warnings {
		sess.AddWarning(w)
	}

	fmt.Println(core.Fig9GroupTable(an))
	if plots, err := core.Fig9BoxPlots(an); err == nil {
		fmt.Println(plots)
	}
	fmt.Printf("silhouette (kernel distance): %.3f\n", an.Silhouette)
	rho, err := core.SizeWidthCorrelation(an)
	if err == nil {
		fmt.Printf("size-width Spearman correlation: %.3f\n", rho)
	}

	if *dotDir != "" {
		if err := os.MkdirAll(*dotDir, 0o755); err != nil {
			return fmt.Errorf("clusterjobs: %v", err)
		}
		for name, dot := range core.Fig8Representatives(an) {
			path := filepath.Join(*dotDir, fmt.Sprintf("group_%s.dot", name))
			if err := os.WriteFile(path, []byte(dot), 0o644); err != nil {
				return fmt.Errorf("clusterjobs: %v", err)
			}
		}
		fmt.Printf("representative DAGs written to %s\n", *dotDir)
	}
	return nil
}
