// Command clusterjobs runs the full pipeline — filter, sample, WL
// kernel, spectral clustering — and prints the paper's Figure 9 group
// table plus each group's representative DAG (Figure 8) as Graphviz
// files.
//
// Usage:
//
//	clusterjobs [-trace batch_task.csv | -gen 10000] [-groups 5]
//	            [-sample 100] [-dot-dir reps/] [-v] [-log-json]
//	            [-debug-addr localhost:6060] [-trace-out trace.json]
//	            [-ledger results/runs/ledger.jsonl]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"jobgraph/internal/cli"
	"jobgraph/internal/core"
)

func main() { cli.Run(run) }

func run() error {
	var (
		tracePath = flag.String("trace", "", "batch_task CSV (empty: generate)")
		gen       = flag.Int("gen", 10000, "jobs to generate when no trace given")
		sample    = flag.Int("sample", 100, "jobs to sample")
		seed      = flag.Int64("seed", 1, "RNG seed")
		groups    = flag.Int("groups", 5, "number of spectral groups")
		dotDir    = flag.String("dot-dir", "", "optional directory for representative DOT files")
	)
	obsFlags := cli.RegisterObsFlags()
	flag.Parse()

	sess, err := obsFlags.Start("clusterjobs")
	if err != nil {
		return fmt.Errorf("clusterjobs: %v", err)
	}
	defer sess.Close()

	jobs, err := cli.LoadOrGenerate(*tracePath, *gen, *seed)
	if err != nil {
		return fmt.Errorf("clusterjobs: %v", err)
	}
	cfg := core.DefaultConfig(cli.TraceWindow(), *seed)
	cfg.SampleSize = *sample
	cfg.Groups = *groups
	an, err := core.Run(jobs, cfg)
	if err != nil {
		return fmt.Errorf("clusterjobs: %v", err)
	}

	fmt.Println(core.Fig9GroupTable(an))
	if plots, err := core.Fig9BoxPlots(an); err == nil {
		fmt.Println(plots)
	}
	fmt.Printf("silhouette (kernel distance): %.3f\n", an.Silhouette)
	rho, err := core.SizeWidthCorrelation(an)
	if err == nil {
		fmt.Printf("size-width Spearman correlation: %.3f\n", rho)
	}

	if *dotDir != "" {
		if err := os.MkdirAll(*dotDir, 0o755); err != nil {
			return fmt.Errorf("clusterjobs: %v", err)
		}
		for name, dot := range core.Fig8Representatives(an) {
			path := filepath.Join(*dotDir, fmt.Sprintf("group_%s.dot", name))
			if err := os.WriteFile(path, []byte(dot), 0o644); err != nil {
				return fmt.Errorf("clusterjobs: %v", err)
			}
		}
		fmt.Printf("representative DAGs written to %s\n", *dotDir)
	}
	return nil
}
