// Command similarity computes the pairwise Weisfeiler–Lehman similarity
// matrix over a job sample (the paper's Figure 7) and emits it as an
// ASCII heat map and optionally CSV.
//
// Usage:
//
//	similarity [-trace batch_task.csv | -gen 10000] [-sample 100]
//	           [-h 3] [-csv sim.csv] [-workers 0]
//	           [-cache-dir .jobgraph-cache] [-no-cache] [-lenient]
//	           [-v] [-log-json] [-debug-addr localhost:6060]
//	           [-trace-out trace.json] [-ledger results/runs/ledger.jsonl]
//	           [-ann] [-topk 10] [-recall-check] [-ann-report gate.json]
//	           [-ann-csv curve.csv] [-ann-out index.gob]
//	           [-minhash 64] [-bands 16] [-buckets 1048576] [-ann-scale N]
//
// With -cache-dir, pipeline stage artifacts are reused across runs with
// matching upstream configuration (see clusterjobs for details).
//
// With -ann, the pipeline additionally sketches the sampled DAGs
// (MinHash over feature-hashed WL vectors) and builds a banded-LSH
// index: -recall-check measures recall@k and sketch-cluster agreement
// against the exact kernel, -ann-csv sweeps the band count for the
// accuracy-vs-speed curve, and -ann-scale measures query latency over a
// synthetic corpus of N sketched jobs. -ann-report writes the numbers
// CI's ann-gate asserts on.
package main

import (
	"flag"
	"fmt"
	"os"

	"jobgraph/internal/cli"
	"jobgraph/internal/core"
	"jobgraph/internal/report"
	"jobgraph/internal/wl"
)

func main() { cli.Run(run) }

func run() error {
	var (
		tracePath  = flag.String("trace", "", "batch_task CSV (empty: generate)")
		gen        = flag.Int("gen", 10000, "jobs to generate when no trace given")
		sample     = flag.Int("sample", 100, "jobs to sample")
		seed       = flag.Int64("seed", 1, "RNG seed")
		iterations = flag.Int("h", 3, "WL refinement iterations")
		base       = flag.String("base", "subtree", "base kernel: subtree, shortest-path or edge")
		csvOut     = flag.String("csv", "", "optional CSV output for the matrix")
	)
	pf := cli.RegisterPipelineFlags("similarity", true)
	af := registerANNFlags()
	flag.Parse()

	if af.recallCheck && !af.enabled {
		return fmt.Errorf("similarity: -recall-check requires -ann")
	}

	sess, err := pf.Start()
	if err != nil {
		return fmt.Errorf("similarity: %v", err)
	}
	defer sess.Close()
	defer pf.Close()

	var baseKernel wl.BaseKernel
	switch *base {
	case "subtree":
		baseKernel = wl.BaseSubtree
	case "shortest-path":
		baseKernel = wl.BaseShortestPath
	case "edge":
		baseKernel = wl.BaseEdge
	default:
		return fmt.Errorf("similarity: unknown base kernel %q", *base)
	}

	readOpts, err := pf.ReadOptions()
	if err != nil {
		return fmt.Errorf("similarity: %v", err)
	}
	jobs, istats, err := cli.LoadOrGenerateOpts(*tracePath, *gen, *seed, readOpts)
	if err != nil {
		return fmt.Errorf("similarity: %v", err)
	}
	cfg := core.DefaultConfig(cli.TraceWindow(), *seed)
	cfg.SampleSize = *sample
	cfg.WL = wl.Options{Iterations: *iterations, UseTypeLabels: true, Base: baseKernel}
	cfg.Ingest = istats
	if af.enabled {
		cfg.ANN = true
		cfg.Sketch = af.sketchOptions()
	}
	pf.Configure(&cfg)
	an, err := core.Run(jobs, cfg)
	if err != nil {
		return fmt.Errorf("similarity: %v", err)
	}
	for _, w := range an.Warnings {
		sess.AddWarning(w)
	}

	fmt.Printf("Fig 7: WL similarity map over %d jobs (h=%d, %s base)\n",
		len(an.Graphs), *iterations, baseKernel)
	fmt.Print(core.Fig7Heatmap(an))

	if *csvOut != "" {
		f, err := os.Create(*csvOut)
		if err != nil {
			return fmt.Errorf("similarity: %v", err)
		}
		if err := report.WriteMatrixCSV(f, an.Similarity); err != nil {
			return fmt.Errorf("similarity: csv: %v", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("similarity: close: %v", err)
		}
		fmt.Printf("matrix written to %s\n", *csvOut)
	}

	if af.enabled {
		if err := runANN(af, an, cfg, cfg.Workers); err != nil {
			return fmt.Errorf("similarity: ann: %v", err)
		}
	}
	return nil
}
