// ANN mode for the similarity command: approximate top-k over MinHash/
// LSH sketches, the recall/agreement check against the exact kernel,
// the accuracy-vs-speed band sweep, and the synthetic million-job
// latency probe. The -ann-report JSON is what CI's ann-gate asserts on;
// the same numbers are published as obs gauges so every gated run's
// ledger entry records them.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	"jobgraph/internal/cluster"
	"jobgraph/internal/core"
	"jobgraph/internal/obs"
	"jobgraph/internal/wl"
)

// annFlags is the -ann* flag group.
type annFlags struct {
	enabled     bool
	topK        int
	recallCheck bool
	report      string
	csv         string
	out         string
	buckets     int
	minhash     int
	bands       int
	scale       int
}

func registerANNFlags() *annFlags {
	af := &annFlags{}
	flag.BoolVar(&af.enabled, "ann", false,
		"build the MinHash/LSH ANN index over the sample (adds the wl.sketch/wl.annindex stages)")
	flag.IntVar(&af.topK, "topk", 10, "neighbours per ANN query (recall@k uses this k)")
	flag.BoolVar(&af.recallCheck, "recall-check", false,
		"measure ANN recall@k and sketch-cluster agreement against the exact kernel (requires -ann)")
	flag.StringVar(&af.report, "ann-report", "", "write the ANN gate report JSON here")
	flag.StringVar(&af.csv, "ann-csv", "", "write the accuracy-vs-speed band sweep CSV here")
	flag.StringVar(&af.out, "ann-out", "", "persist the ANN index (gob) here")
	flag.IntVar(&af.buckets, "buckets", 0, "hashed feature space width (0: 1<<20)")
	flag.IntVar(&af.minhash, "minhash", 0, "MinHash signature width (0: 64)")
	flag.IntVar(&af.bands, "bands", 0, "LSH bands (0: 16; must divide -minhash)")
	flag.IntVar(&af.scale, "ann-scale", 0,
		"also measure query latency over a synthetic corpus of this many sketched jobs (0: skip)")
	return af
}

func (af *annFlags) sketchOptions() wl.SketchOptions {
	return wl.SketchOptions{Buckets: af.buckets, Hashes: af.minhash, Bands: af.bands}.Resolved()
}

// gateReport is the -ann-report payload; CI asserts on these fields.
type gateReport struct {
	Schema     string `json:"schema"`
	SampleJobs int    `json:"sample_jobs"`
	TopK       int    `json:"topk"`
	Hashes     int    `json:"hashes"`
	Bands      int    `json:"bands"`
	Buckets    int    `json:"buckets"`

	// Recall/agreement vs the exact kernel (present with -recall-check).
	RecallAtK      *float64 `json:"recall_at_k,omitempty"`
	MeanCandidates *float64 `json:"mean_candidates,omitempty"`
	ARIMiniBatch   *float64 `json:"ari_minibatch,omitempty"`
	NMIMiniBatch   *float64 `json:"nmi_minibatch,omitempty"`
	ARIKMedoids    *float64 `json:"ari_kmedoids,omitempty"`
	NMIKMedoids    *float64 `json:"nmi_kmedoids,omitempty"`

	// Synthetic-corpus latency (present with -ann-scale).
	ScaleJobs  int      `json:"scale_jobs,omitempty"`
	P50QueryUs *float64 `json:"p50_query_us,omitempty"`
	P95QueryUs *float64 `json:"p95_query_us,omitempty"`
}

const gateSchema = "jobgraph-ann-gate/v1"

// Gate gauges: the same numbers the JSON report carries, published on
// the default registry so the run's ledger entry records them.
var (
	gRecallPermille = obs.Default().Gauge("wl.ann.gate.recall_permille")
	gP50QueryUs     = obs.Default().Gauge("wl.ann.gate.p50_query_us")
	gScaleJobs      = obs.Default().Gauge("wl.ann.gate.scale_jobs")
	gARIPermille    = obs.Default().Gauge("wl.ann.gate.ari_minibatch_permille")
)

// runANN executes every requested ANN extra after the pipeline run.
func runANN(af *annFlags, an *core.Analysis, cfg core.Config, workers int) error {
	ix := an.ANNIndex
	if ix == nil {
		return fmt.Errorf("pipeline produced no ANN index")
	}
	sk := ix.Options()
	rep := gateReport{
		Schema:     gateSchema,
		SampleJobs: ix.Len(),
		TopK:       af.topK,
		Hashes:     sk.Hashes,
		Bands:      sk.Bands,
		Buckets:    sk.Buckets,
	}
	fmt.Printf("ANN index: %d jobs, %d hashes in %d bands over %d buckets\n",
		ix.Len(), sk.Hashes, sk.Bands, sk.Buckets)

	if af.recallCheck {
		if err := annRecallCheck(af, an, cfg, &rep); err != nil {
			return err
		}
	}
	if af.csv != "" {
		if err := annBandSweep(af, an, cfg, workers); err != nil {
			return err
		}
	}
	if af.scale > 0 {
		if err := annScaleProbe(af, &rep, workers); err != nil {
			return err
		}
	}
	if af.out != "" {
		f, err := os.Create(af.out)
		if err != nil {
			return err
		}
		if err := ix.Save(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("ANN index written to %s\n", af.out)
	}
	if af.report != "" {
		f, err := os.Create(af.report)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("ANN gate report written to %s\n", af.report)
	}
	return nil
}

// annRecall computes mean recall@k of an index against the exact kernel
// matrix, tie-tolerant: an ANN hit counts when its exact similarity
// reaches the k-th exact similarity (ties at the boundary are all
// equally correct answers). Also returns the mean LSH candidate-set
// size per query.
func annRecall(ix *wl.ANNIndex, an *core.Analysis, k int) (recall, meanCands float64, err error) {
	n := len(an.Graphs)
	idxOf := make(map[string]int, n)
	for i, g := range an.Graphs {
		idxOf[g.JobID] = i
	}
	var recallSum float64
	var candTotal int
	for q := 0; q < n; q++ {
		exact := make([]float64, 0, n-1)
		for j := 0; j < n; j++ {
			if j != q {
				exact = append(exact, an.Similarity.At(q, j))
			}
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(exact)))
		kk := k
		if kk > len(exact) {
			kk = len(exact)
		}
		threshold := exact[kk-1] - 1e-9

		hits, qerr := ix.QueryJob(an.Graphs[q].JobID, kk)
		if qerr != nil {
			return 0, 0, qerr
		}
		candTotal += len(ix.Candidates(an.HashedVectors[q])) - 1 // minus self
		got := 0
		for _, h := range hits {
			j, ok := idxOf[h.JobID]
			if !ok {
				return 0, 0, fmt.Errorf("ANN returned unknown job %s", h.JobID)
			}
			if an.Similarity.At(q, j) >= threshold {
				got++
			}
		}
		recallSum += float64(got) / float64(kk)
	}
	return recallSum / float64(n), float64(candTotal) / float64(n), nil
}

// annRecallCheck fills the gate report's accuracy section: recall@k vs
// the exact kernel and sketch-cluster agreement vs the exact spectral
// labels, on the (≤100-job) analysis sample.
func annRecallCheck(af *annFlags, an *core.Analysis, cfg core.Config, rep *gateReport) error {
	recall, meanCands, err := annRecall(an.ANNIndex, an, af.topK)
	if err != nil {
		return err
	}
	rep.RecallAtK = &recall
	rep.MeanCandidates = &meanCands
	gRecallPermille.Set(int64(recall * 1000))
	fmt.Printf("recall@%d vs exact kernel: %.3f (mean candidates %.1f of %d)\n",
		af.topK, recall, meanCands, an.ANNIndex.Len()-1)

	// Cluster agreement: sketch-space clusterings vs the exact spectral
	// labels. Informational — ARI/NMI between different algorithms is
	// structurally noisy at n=100, so the gate asserts recall, not this.
	pts := make([]map[int]float64, len(an.HashedVectors))
	for i, v := range an.HashedVectors {
		pts[i] = v
	}
	mb, err := cluster.MiniBatchKMeans(pts, cluster.MiniBatchKMeansOptions{K: cfg.Groups, Seed: cfg.Seed})
	if err != nil {
		return err
	}
	ariMB, err := cluster.ARI(mb.Labels, an.Labels)
	if err != nil {
		return err
	}
	nmiMB, err := cluster.NMI(mb.Labels, an.Labels)
	if err != nil {
		return err
	}
	km, err := cluster.SketchKMedoids(pts, an.ANNIndex.CandidateNeighbors(32),
		cluster.SketchKMedoidsOptions{K: cfg.Groups, Seed: cfg.Seed})
	if err != nil {
		return err
	}
	ariKM, err := cluster.ARI(km.Labels, an.Labels)
	if err != nil {
		return err
	}
	nmiKM, err := cluster.NMI(km.Labels, an.Labels)
	if err != nil {
		return err
	}
	rep.ARIMiniBatch, rep.NMIMiniBatch = &ariMB, &nmiMB
	rep.ARIKMedoids, rep.NMIKMedoids = &ariKM, &nmiKM
	gARIPermille.Set(int64(ariMB * 1000))
	fmt.Printf("cluster agreement vs spectral: minibatch ARI %.3f NMI %.3f, kmedoids ARI %.3f NMI %.3f\n",
		ariMB, nmiMB, ariKM, nmiKM)
	return nil
}

// annBandSweep writes the accuracy-vs-speed curve: one row per band
// count (each divisor of the signature width), re-indexing the sample's
// sketches under that LSH geometry and measuring recall@k, candidate
// volume and query latency.
func annBandSweep(af *annFlags, an *core.Analysis, cfg core.Config, workers int) error {
	base := an.ANNIndex.Options()
	jobIDs := make([]string, len(an.Graphs))
	for i, g := range an.Graphs {
		jobIDs[i] = g.JobID
	}
	f, err := os.Create(af.csv)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintln(f, "bands,rows,recall_at_k,mean_candidates,p50_query_us,jobs,topk")
	for bands := 1; bands <= base.Hashes; bands *= 2 {
		if base.Hashes%bands != 0 {
			continue
		}
		opt := base
		opt.Bands = bands
		sigs, err := wl.Sketches(an.HashedVectors, opt, workers)
		if err != nil {
			return err
		}
		ix, err := wl.NewANNIndexFromSketches(cfg.WL, opt, jobIDs, an.HashedVectors, sigs)
		if err != nil {
			return err
		}
		ix.Build()
		recall, meanCands, err := annRecall(ix, an, af.topK)
		if err != nil {
			return err
		}
		durs := make([]time.Duration, len(jobIDs))
		for i, id := range jobIDs {
			start := time.Now()
			if _, err := ix.QueryJob(id, af.topK); err != nil {
				return err
			}
			durs[i] = time.Since(start)
		}
		fmt.Fprintf(f, "%d,%d,%.4f,%.1f,%.1f,%d,%d\n",
			bands, base.Hashes/bands, recall, meanCands,
			float64(percentileDur(durs, 0.50))/float64(time.Microsecond),
			len(jobIDs), af.topK)
	}
	fmt.Printf("accuracy-vs-speed sweep written to %s\n", af.csv)
	return nil
}

// annScaleProbe measures top-k query latency over a synthetic sketched
// corpus of af.scale jobs. The corpus mimics trace structure — jobs are
// perturbed copies of a few thousand prototype supports, so LSH buckets
// carry realistic density instead of all-singletons.
func annScaleProbe(af *annFlags, rep *gateReport, workers int) error {
	n := af.scale
	sk := af.sketchOptions()
	fmt.Printf("scale probe: sketching %d synthetic jobs...\n", n)
	rng := rand.New(rand.NewSource(42))

	const nProto = 4096
	protos := make([][]int, nProto)
	for p := range protos {
		nnz := 12 + rng.Intn(24)
		protos[p] = make([]int, nnz)
		for i := range protos[p] {
			protos[p][i] = rng.Intn(sk.Buckets)
		}
	}
	vectors := make([]wl.Vector, n)
	jobIDs := make([]string, n)
	for i := 0; i < n; i++ {
		proto := protos[rng.Intn(nProto)]
		v := make(wl.Vector, len(proto))
		for _, feat := range proto {
			v[feat] = float64(1 + rng.Intn(3))
		}
		// Perturb a couple of features so near-duplicates dominate but
		// exact duplicates stay rare.
		for m := 0; m < 2; m++ {
			v[rng.Intn(sk.Buckets)] = 1
		}
		vectors[i] = v
		jobIDs[i] = fmt.Sprintf("synth-%08d", i)
	}

	buildStart := time.Now()
	sigs, err := wl.Sketches(vectors, sk, workers)
	if err != nil {
		return err
	}
	ix, err := wl.NewANNIndexFromSketches(wl.DefaultOptions(), sk, jobIDs, vectors, sigs)
	if err != nil {
		return err
	}
	ix.Build()
	buildDur := time.Since(buildStart)
	vectors, sigs = nil, nil
	// The probe measures steady-state query latency: collect the
	// construction garbage now and fault the band tables in with a
	// warm-up pass, so neither pollutes the timed samples.
	runtime.GC()

	const nQueries = 256
	for q := 0; q < 32; q++ {
		if _, err := ix.QueryJob(jobIDs[(q*(n/32))%n], af.topK); err != nil {
			return err
		}
	}
	durs := make([]time.Duration, 0, nQueries)
	for q := 0; q < nQueries; q++ {
		id := jobIDs[(q*(n/nQueries))%n]
		start := time.Now()
		if _, err := ix.QueryJob(id, af.topK); err != nil {
			return err
		}
		durs = append(durs, time.Since(start))
	}
	p50 := float64(percentileDur(durs, 0.50)) / float64(time.Microsecond)
	p95 := float64(percentileDur(durs, 0.95)) / float64(time.Microsecond)
	rep.ScaleJobs = n
	rep.P50QueryUs = &p50
	rep.P95QueryUs = &p95
	gP50QueryUs.Set(int64(p50))
	gScaleJobs.Set(int64(n))
	fmt.Printf("scale probe: %d jobs indexed in %.1fs; top-%d query p50 %.0fµs p95 %.0fµs\n",
		n, buildDur.Seconds(), af.topK, p50, p95)
	return nil
}

// percentileDur returns the p-quantile (nearest-rank) of a duration set.
func percentileDur(durs []time.Duration, p float64) time.Duration {
	if len(durs) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), durs...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	i := int(p * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
