// Command characterize runs the structural characterization stages of
// the paper over a trace: size distributions before/after conflation
// (Fig 3), per-size-group features (Figs 4/5), the pattern census
// (§V-B) and the M/J/R task-type table (Fig 6).
//
// Usage:
//
//	characterize [-trace batch_task.csv | -gen 10000] [-sample 100] [-seed 1]
//	             [-workers N] [-cache-dir .jobgraph-cache] [-no-cache]
//	             [-lenient] [-v] [-log-json] [-debug-addr localhost:6060]
//	             [-trace-out trace.json] [-ledger results/runs/ledger.jsonl]
//
// -workers spreads the parallel stages (trace decode, filtering, the
// per-job DAG stage, the WL kernel) across that many goroutines; 0
// uses every CPU, 1 forces the bit-identical sequential pipeline.
// -cache-dir reuses pipeline stage artifacts across runs with matching
// upstream configuration (see clusterjobs for details).
package main

import (
	"flag"
	"fmt"

	"jobgraph/internal/cli"
	"jobgraph/internal/core"
	"jobgraph/internal/sampling"
)

func main() { cli.Run(run) }

func run() error {
	var (
		tracePath = flag.String("trace", "", "batch_task CSV (empty: generate)")
		gen       = flag.Int("gen", 10000, "jobs to generate when no trace given")
		sample    = flag.Int("sample", 100, "jobs to sample for the per-job tables")
		seed      = flag.Int64("seed", 1, "RNG seed")
	)
	pf := cli.RegisterPipelineFlags("characterize", true)
	flag.Parse()

	sess, err := pf.Start()
	if err != nil {
		return fmt.Errorf("characterize: %v", err)
	}
	defer sess.Close()
	defer pf.Close()

	readOpts, err := pf.ReadOptions()
	if err != nil {
		return fmt.Errorf("characterize: %v", err)
	}
	jobs, istats, err := cli.LoadOrGenerateOpts(*tracePath, *gen, *seed, readOpts)
	if err != nil {
		return fmt.Errorf("characterize: %v", err)
	}
	cands, fstats, err := sampling.FilterParallel(jobs, sampling.PaperCriteria(cli.TraceWindow()), *pf.Workers)
	if err != nil {
		return fmt.Errorf("characterize: %v", err)
	}
	fmt.Printf("filtering: %d jobs in, %d eligible DAG jobs (integrity %d, availability %d, non-DAG %d)\n\n",
		fstats.Input, fstats.Kept, fstats.NotTerminated, fstats.OutsideWindow, fstats.NonDAG)

	graphs := sampling.Graphs(cands)

	fig3, err := core.Fig3Conflation(graphs)
	if err != nil {
		return fmt.Errorf("characterize: %v", err)
	}
	fmt.Println(fig3)

	rows, err := core.FigSizeGroupFeatures(graphs, false)
	if err != nil {
		return fmt.Errorf("characterize: %v", err)
	}
	fmt.Println(core.FigSizeGroupTable(rows, "Fig 4: job features before node conflation"))

	rowsC, err := core.FigSizeGroupFeatures(graphs, true)
	if err != nil {
		return fmt.Errorf("characterize: %v", err)
	}
	fmt.Println(core.FigSizeGroupTable(rowsC, "Fig 5: job features after node conflation"))

	census, _, err := core.PatternCensusTable(graphs)
	if err != nil {
		return fmt.Errorf("characterize: %v", err)
	}
	fmt.Println(census)

	// Fig 6 needs a bounded per-job table: sample first.
	cfg := core.DefaultConfig(cli.TraceWindow(), *seed)
	cfg.SampleSize = *sample
	cfg.Ingest = istats
	pf.Configure(&cfg)
	an, err := core.Run(jobs, cfg)
	if err != nil {
		return fmt.Errorf("characterize: %v", err)
	}
	for _, w := range an.Warnings {
		sess.AddWarning(w)
	}
	fmt.Println(core.Fig6TaskTypes(an))
	return nil
}
