// Command runreport renders one run's telemetry — a metrics.json
// snapshot or a ledger entry — into a self-contained HTML document
// (inline CSS and SVG, no external assets) suitable for CI artifacts.
// The report includes the stage tree, engine cache traffic, metric
// tables, the slow-job exemplar table (top-k slowest dag.jobs entries
// with duration bars), and a stall-watchdog banner when the run's
// ledger entry carries a flight-dump path.
//
// Usage:
//
//	runreport -metrics out/metrics.json -out report.html
//	runreport -ledger results/runs/ledger.jsonl -out report.html
//	runreport -ledger ledger.jsonl -run 1a2b3c... -out report.html
//
// With -ledger and no -run, the newest entry is reported. With -out
// omitted, the HTML goes to stdout.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"jobgraph/internal/cli"
	"jobgraph/internal/ledger"
	"jobgraph/internal/obs"
	"jobgraph/internal/report"
)

func main() { cli.Run(run) }

type config struct {
	metricsPath string
	ledgerPath  string
	runID       string
	outPath     string
}

func run() error {
	var cfg config
	flag.StringVar(&cfg.metricsPath, "metrics", "", "metrics.json snapshot to report")
	flag.StringVar(&cfg.ledgerPath, "ledger", "", "run ledger JSONL (alternative to -metrics)")
	flag.StringVar(&cfg.runID, "run", "", "ledger run id to report (default: newest entry)")
	flag.StringVar(&cfg.outPath, "out", "", "write the HTML here (default: stdout)")
	flag.Parse()

	w := io.Writer(os.Stdout)
	if cfg.outPath != "" {
		f, err := os.Create(cfg.outPath)
		if err != nil {
			return fmt.Errorf("runreport: %v", err)
		}
		defer f.Close()
		w = f
	}
	if err := execute(cfg, w); err != nil {
		return fmt.Errorf("runreport: %v", err)
	}
	if cfg.outPath != "" {
		fmt.Fprintf(os.Stderr, "report written to %s\n", cfg.outPath)
	}
	return nil
}

// execute loads the requested run and renders the report to w.
func execute(cfg config, w io.Writer) error {
	snap, entry, err := load(cfg)
	if err != nil {
		return err
	}
	return report.WriteRunHTML(w, snap, entry, time.Now())
}

func load(cfg config) (obs.Snapshot, *ledger.Entry, error) {
	switch {
	case cfg.ledgerPath != "":
		entries, err := ledger.Read(cfg.ledgerPath)
		if err != nil {
			return obs.Snapshot{}, nil, err
		}
		if len(entries) == 0 {
			return obs.Snapshot{}, nil, fmt.Errorf("ledger %s is empty", cfg.ledgerPath)
		}
		e := entries[len(entries)-1]
		if cfg.runID != "" {
			var ok bool
			if e, ok = ledger.Find(entries, cfg.runID); !ok {
				return obs.Snapshot{}, nil, fmt.Errorf("run %s not found in ledger", cfg.runID)
			}
		}
		return e.Metrics, &e, nil
	case cfg.metricsPath != "":
		data, err := os.ReadFile(cfg.metricsPath)
		if err != nil {
			return obs.Snapshot{}, nil, err
		}
		var snap obs.Snapshot
		if err := json.Unmarshal(data, &snap); err != nil {
			return obs.Snapshot{}, nil, fmt.Errorf("parse %s: %w", cfg.metricsPath, err)
		}
		if snap.Schema != obs.SnapshotSchema {
			return obs.Snapshot{}, nil, fmt.Errorf("%s: schema %q, want %q", cfg.metricsPath, snap.Schema, obs.SnapshotSchema)
		}
		return snap, nil, nil
	default:
		return obs.Snapshot{}, nil, fmt.Errorf("give either -metrics or -ledger")
	}
}
