package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"jobgraph/internal/ledger"
	"jobgraph/internal/obs"
)

func writeTestLedger(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	for i, id := range []string{"run0000000000old", "run0000000000new"} {
		e := ledger.Entry{
			Schema:    ledger.Schema,
			RunID:     id,
			Command:   "characterize",
			StartedAt: time.Date(2026, 2, 3, 10, 30+i, 0, 0, time.UTC),
			WallMs:    100,
			Host:      ledger.Host{Hostname: "test", NumCPU: 1, GoVersion: "go1.22"},
			Metrics: obs.Snapshot{
				Schema:   obs.SnapshotSchema,
				Counters: map[string]int64{"ingest.rows": int64(100 * (i + 1))},
				Spans: []obs.SpanSnapshot{
					{Name: "pipeline", Count: 1, TotalMs: 50, MinMs: 50, MaxMs: 50},
				},
			},
		}
		if err := ledger.Append(path, e); err != nil {
			t.Fatal(err)
		}
	}
	return path
}

func TestExecuteLedgerNewest(t *testing.T) {
	var buf bytes.Buffer
	err := execute(config{ledgerPath: writeTestLedger(t)}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	html := buf.String()
	if !strings.Contains(html, "run0000000000new") {
		t.Errorf("report is not for the newest run:\n%.300s", html)
	}
	if strings.Contains(html, "http://") || strings.Contains(html, "https://") {
		t.Error("report references external URLs")
	}
}

func TestExecuteLedgerByRunID(t *testing.T) {
	path := writeTestLedger(t)
	var buf bytes.Buffer
	if err := execute(config{ledgerPath: path, runID: "run0000000000old"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "run0000000000old") {
		t.Error("report is not for the requested run")
	}
	if err := execute(config{ledgerPath: path, runID: "nope"}, &buf); err == nil {
		t.Error("unknown run id accepted")
	}
}

func TestExecuteMetricsFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "metrics.json")
	reg := obs.NewRegistry()
	reg.Counter("ingest.rows").Add(42)
	sp := reg.StartSpan("pipeline")
	sp.Child("dag.jobs").End()
	sp.End()
	if err := reg.WriteSnapshotFile(path); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := execute(config{metricsPath: path}, &buf); err != nil {
		t.Fatal(err)
	}
	html := buf.String()
	for _, want := range []string{"ingest.rows", "pipeline/dag.jobs", "No ledger entry"} {
		if !strings.Contains(html, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestExecuteErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := execute(config{}, &buf); err == nil {
		t.Error("no inputs accepted")
	}
	empty := filepath.Join(t.TempDir(), "missing.json")
	if err := execute(config{metricsPath: empty}, &buf); err == nil {
		t.Error("missing metrics file accepted")
	}
}
