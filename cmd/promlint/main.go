// Command promlint validates Prometheus text exposition (the /metrics
// format) read from files or stdin, using the same in-repo parser the
// exposition writer is tested against. CI scrapes a live run's
// /metrics endpoint and pipes the body through this to catch format
// drift without external tooling.
//
// Usage:
//
//	promlint metrics.txt [more.txt ...]
//	curl -s localhost:6060/metrics | promlint
//	promlint -metrics out/metrics.json
//
// With -metrics, the input is a metrics.json snapshot instead of
// exposition text: the snapshot is rendered through the exposition
// writer and the result linted, proving every metric name a run
// produced survives the Prometheus round trip.
//
// Exits non-zero when any input has problems; each problem is printed
// as file:line: message.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"jobgraph/internal/cli"
	"jobgraph/internal/obs"
	"jobgraph/internal/obs/promexport"
)

func main() { cli.Run(run) }

func run() error {
	metricsPath := flag.String("metrics", "", "lint the exposition rendered from this metrics.json snapshot instead of raw text inputs")
	flag.Parse()
	if *metricsPath != "" {
		return lintSnapshot(*metricsPath, os.Stdout)
	}
	return execute(flag.Args(), os.Stdin, os.Stdout)
}

// lintSnapshot renders a metrics.json snapshot through the exposition
// writer and lints the result — the offline twin of scraping /metrics.
func lintSnapshot(path string, w io.Writer) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("promlint: %v", err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("promlint: parse %s: %v", path, err)
	}
	if snap.Schema != obs.SnapshotSchema {
		return fmt.Errorf("promlint: %s: schema %q, want %q", path, snap.Schema, obs.SnapshotSchema)
	}
	var buf bytes.Buffer
	if err := promexport.Write(&buf, snap); err != nil {
		return fmt.Errorf("promlint: render %s: %v", path, err)
	}
	if bad := lint(path, &buf, w); bad > 0 {
		return fmt.Errorf("promlint: %d problem(s) found", bad)
	}
	return nil
}

// execute lints each named file, or stdin when no files are given, and
// errors when any input had problems.
func execute(paths []string, stdin io.Reader, w io.Writer) error {
	bad := 0
	if len(paths) == 0 {
		bad += lint("<stdin>", stdin, w)
	}
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return fmt.Errorf("promlint: %v", err)
		}
		bad += lint(path, f, w)
		f.Close()
	}
	if bad > 0 {
		return fmt.Errorf("promlint: %d problem(s) found", bad)
	}
	return nil
}

func lint(name string, r io.Reader, w io.Writer) int {
	problems := promexport.Lint(r)
	for _, p := range problems {
		fmt.Fprintf(w, "%s:%d: %s\n", name, p.Line, p.Msg)
	}
	return len(problems)
}
