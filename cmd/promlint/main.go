// Command promlint validates Prometheus text exposition (the /metrics
// format) read from files or stdin, using the same in-repo parser the
// exposition writer is tested against. CI scrapes a live run's
// /metrics endpoint and pipes the body through this to catch format
// drift without external tooling.
//
// Usage:
//
//	promlint metrics.txt [more.txt ...]
//	curl -s localhost:6060/metrics | promlint
//
// Exits non-zero when any input has problems; each problem is printed
// as file:line: message.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"jobgraph/internal/cli"
	"jobgraph/internal/obs/promexport"
)

func main() { cli.Run(run) }

func run() error {
	flag.Parse()
	return execute(flag.Args(), os.Stdin, os.Stdout)
}

// execute lints each named file, or stdin when no files are given, and
// errors when any input had problems.
func execute(paths []string, stdin io.Reader, w io.Writer) error {
	bad := 0
	if len(paths) == 0 {
		bad += lint("<stdin>", stdin, w)
	}
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return fmt.Errorf("promlint: %v", err)
		}
		bad += lint(path, f, w)
		f.Close()
	}
	if bad > 0 {
		return fmt.Errorf("promlint: %d problem(s) found", bad)
	}
	return nil
}

func lint(name string, r io.Reader, w io.Writer) int {
	problems := promexport.Lint(r)
	for _, p := range problems {
		fmt.Fprintf(w, "%s:%d: %s\n", name, p.Line, p.Msg)
	}
	return len(problems)
}
