package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const goodExposition = `# HELP jobgraph_rows_total rows
# TYPE jobgraph_rows_total counter
jobgraph_rows_total 42
`

const badExposition = `# TYPE jobgraph_rows_total counter
jobgraph_rows_total notanumber
jobgraph-bad-name 1
`

func TestExecuteStdinClean(t *testing.T) {
	var out bytes.Buffer
	if err := execute(nil, strings.NewReader(goodExposition), &out); err != nil {
		t.Fatalf("clean input rejected: %v\n%s", err, out.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean input produced output: %s", out.String())
	}
}

func TestExecuteStdinProblems(t *testing.T) {
	var out bytes.Buffer
	err := execute(nil, strings.NewReader(badExposition), &out)
	if err == nil {
		t.Fatal("bad input accepted")
	}
	if !strings.Contains(out.String(), "<stdin>:2:") {
		t.Errorf("problems not reported with line numbers:\n%s", out.String())
	}
}

func TestExecuteFiles(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.txt")
	bad := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(good, []byte(goodExposition), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(bad, []byte(badExposition), 0o644); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if err := execute([]string{good}, nil, &out); err != nil {
		t.Fatalf("good file rejected: %v", err)
	}
	if err := execute([]string{good, bad}, nil, &out); err == nil {
		t.Fatal("bad file accepted")
	}
	if !strings.Contains(out.String(), "bad.txt:") {
		t.Errorf("problem not attributed to file:\n%s", out.String())
	}
	if err := execute([]string{filepath.Join(dir, "missing.txt")}, nil, &out); err == nil {
		t.Fatal("missing file accepted")
	}
}
