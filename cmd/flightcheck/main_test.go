package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"jobgraph/internal/obs"
	"jobgraph/internal/obs/flight"
)

func TestFlightcheckSummarizesValidDump(t *testing.T) {
	reg := obs.Default()
	reg.Reset()
	defer reg.Reset()
	defer reg.SetObserver(nil)

	rec := flight.NewRecorder(reg, 64)
	rec.SetRunInfo("deadbeef", "tracecheck")
	reg.SetObserver(rec)
	reg.StartSpan("pipeline").End()
	hb := reg.Heartbeat("trace.ingest.batch_task")
	hb.Beat()
	rec.Note("watchdog", "heartbeat-stall: trace.ingest.batch_task")

	dir := t.TempDir()
	path, err := rec.DumpTo(dir, "watchdog", "heartbeat-stall", "")
	if err != nil {
		t.Fatal(err)
	}

	var buf strings.Builder
	if err := execute(path, 20, &buf); err != nil {
		t.Fatalf("flightcheck rejected a valid dump: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"run deadbeef", "tracecheck", "reason:      watchdog",
		"trace.ingest.batch_task", "ACTIVE", "pipeline",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q in:\n%s", want, out)
		}
	}
}

func TestFlightcheckRejectsBadInputs(t *testing.T) {
	dir := t.TempDir()
	if err := execute(filepath.Join(dir, "absent.flight.json"), 20, &strings.Builder{}); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.flight.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"wrong/v9","reason":"panic"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := execute(bad, 20, &strings.Builder{}); err == nil {
		t.Error("wrong-schema dump accepted")
	}
	garbage := filepath.Join(dir, "garbage.flight.json")
	if err := os.WriteFile(garbage, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := execute(garbage, 20, &strings.Builder{}); err == nil {
		t.Error("non-JSON dump accepted")
	}
}
