// Command flightcheck validates and summarizes a flight-recorder dump
// (<run_id>.flight.json, written on panic, SIGQUIT or a stall-watchdog
// trip). It re-parses the dump through the same schema validation the
// recorder's tests use and prints a human-oriented triage summary: why
// the dump was taken, what was running, which heartbeats were silent,
// and the tail of the event ring leading up to the capture.
//
// Usage:
//
//	flightcheck /tmp/1a2b3c4d.flight.json
//	flightcheck -tail 40 dump.flight.json
//
// Exits non-zero when the dump is missing, malformed, or fails schema
// validation — so CI can assert "the watchdog produced a valid dump"
// with a single command.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"jobgraph/internal/cli"
	"jobgraph/internal/obs/flight"
)

func main() { cli.Run(run) }

func run() error {
	tail := flag.Int("tail", 20, "event-ring entries to print from the end")
	flag.Parse()
	if flag.NArg() != 1 {
		return fmt.Errorf("flightcheck: give exactly one <run_id>.flight.json path")
	}
	return execute(flag.Arg(0), *tail, os.Stdout)
}

func execute(path string, tail int, w io.Writer) error {
	d, err := flight.ReadFile(path)
	if err != nil {
		return fmt.Errorf("flightcheck: %v", err)
	}
	summarize(w, d, tail)
	return nil
}

// summarize prints the triage view of a validated dump.
func summarize(w io.Writer, d flight.Dump, tail int) {
	fmt.Fprintf(w, "flight dump: run %s (%s)\n", d.RunID, d.Command)
	fmt.Fprintf(w, "reason:      %s", d.Reason)
	if d.Detail != "" {
		fmt.Fprintf(w, " — %s", d.Detail)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "captured:    %s\n", d.CapturedAt.Format("2006-01-02 15:04:05.000 MST"))
	fmt.Fprintf(w, "events:      %d retained, %d dropped by the ring\n", len(d.Events), d.EventsDropped)

	if len(d.Stages) > 0 {
		fmt.Fprintf(w, "\nstages at capture:\n")
		for _, st := range d.Stages {
			fmt.Fprintf(w, "  %-24s %s\n", st.Name, st.State)
		}
	}
	if len(d.Heartbeats) > 0 {
		fmt.Fprintf(w, "\nheartbeats at capture:\n")
		for _, hb := range d.Heartbeats {
			state := "done"
			if hb.Active {
				state = fmt.Sprintf("ACTIVE, silent %.0fms", hb.AgeMs)
			}
			fmt.Fprintf(w, "  %-28s %s (%d beats)\n", hb.Name, state, hb.Beats)
		}
	}
	if tail > 0 && len(d.Events) > 0 {
		evs := d.Events
		if len(evs) > tail {
			evs = evs[len(evs)-tail:]
		}
		fmt.Fprintf(w, "\nlast %d events:\n", len(evs))
		for _, ev := range evs {
			fmt.Fprintf(w, "  #%-6d %-10s %s", ev.Seq, ev.Kind, ev.Name)
			if ev.DurMs > 0 {
				fmt.Fprintf(w, " (%.2fms)", ev.DurMs)
			}
			if ev.Detail != "" {
				fmt.Fprintf(w, " — %s", ev.Detail)
			}
			fmt.Fprintln(w)
		}
	}
	if d.Stack != "" {
		fmt.Fprintf(w, "\ncrash stack captured (%d bytes) — view with: jq -r .stack %s\n", len(d.Stack), "<dump>")
	}
}
