// Command tracecheck lints a batch_task trace before analysis: schema
// problems, cyclic or dangling dependency encodings, duplicate task
// ids, integrity violations. Exit status is non-zero when errors are
// found, making it usable as a pre-flight gate.
//
// Usage:
//
//	tracecheck -trace batch_task.csv[.gz] [-max-findings 50]
//	tracecheck -gen 5000            # lint a synthetic trace (self-test)
//
// The shared observability flags (-v, -log-json, -debug-addr,
// -trace-out, -ledger) are accepted too.
package main

import (
	"flag"
	"fmt"
	"sort"

	"jobgraph/internal/cli"
	"jobgraph/internal/lint"
)

func main() { cli.Run(run) }

func run() error {
	var (
		tracePath   = flag.String("trace", "", "batch_task CSV (.gz supported; empty: generate)")
		gen         = flag.Int("gen", 5000, "jobs to generate when no trace given")
		seed        = flag.Int64("seed", 1, "RNG seed for generation")
		maxFindings = flag.Int("max-findings", 50, "findings to print per severity")
	)
	obsFlags := cli.RegisterObsFlags()
	flag.Parse()

	sess, err := obsFlags.Start("tracecheck")
	if err != nil {
		return fmt.Errorf("tracecheck: %v", err)
	}
	defer sess.Close()

	jobs, err := cli.LoadOrGenerate(*tracePath, *gen, *seed)
	if err != nil {
		return fmt.Errorf("tracecheck: %v", err)
	}
	rep := lint.Jobs(jobs)

	fmt.Printf("linted %d jobs: %d errors, %d warnings, %d info\n\n",
		rep.Jobs, rep.Count(lint.Error), rep.Count(lint.Warning), rep.Count(lint.Info))

	checks := make([]string, 0, len(rep.ByCheck))
	for c := range rep.ByCheck {
		checks = append(checks, c)
	}
	sort.Strings(checks)
	for _, c := range checks {
		fmt.Printf("%-18s %d\n", c, rep.ByCheck[c])
	}
	fmt.Println()

	for _, sev := range []lint.Severity{lint.Error, lint.Warning} {
		printed := 0
		for _, f := range rep.Findings {
			if f.Severity != sev {
				continue
			}
			if printed == *maxFindings {
				fmt.Printf("... more %s findings suppressed\n", sev)
				break
			}
			fmt.Printf("%-7s %s: %s: %s\n", sev, f.Job, f.Check, f.Detail)
			printed++
		}
	}

	// Non-zero exit for dirty traces, but through cli.Exit so any
	// deferred cleanup in future revisions still runs.
	if !rep.Clean() {
		cli.Exit(1)
	}
	return nil
}
