// Command tracecheck lints a batch_task trace before analysis: schema
// problems, cyclic or dangling dependency encodings, duplicate task
// ids, integrity violations. Exit status is non-zero when errors are
// found, making it usable as a pre-flight gate.
//
// Usage:
//
//	tracecheck -trace batch_task.csv[.gz] [-max-findings 50]
//	tracecheck -gen 5000            # lint a synthetic trace (self-test)
//	tracecheck -trace dirty.csv.gz -lenient -max-bad-ratio 0.01 \
//	           -quarantine bad_rows.csv   # resilient pre-flight
//
// With -lenient the reader skips malformed rows (within the -max-bad-*
// budgets) and the report gains an ingest-health section: rows parsed,
// per-class bad-row tallies, quarantined count and the partial-read
// flag. The exit status is non-zero when the error budget was exceeded
// or the lint found errors. The shared observability flags (-v,
// -log-json, -debug-addr, -trace-out, -ledger) are accepted too.
//
// Real traces are linted as a stream: jobs are checked as they come off
// the reader (trace.ForEachJob), so memory is bounded by the in-flight
// job window rather than the table size, and -workers spreads the CSV
// decode across CPUs.
package main

import (
	"errors"
	"flag"
	"fmt"
	"sort"

	"jobgraph/internal/cli"
	"jobgraph/internal/lint"
	"jobgraph/internal/trace"
)

func main() { cli.Run(run) }

func run() error {
	var (
		tracePath   = flag.String("trace", "", "batch_task CSV (.gz supported; empty: generate)")
		gen         = flag.Int("gen", 5000, "jobs to generate when no trace given")
		seed        = flag.Int64("seed", 1, "RNG seed for generation")
		maxFindings = flag.Int("max-findings", 50, "findings to print per severity")
	)
	// tracecheck is a pre-flight lint, not an analysis: no cache flags.
	pf := cli.RegisterPipelineFlags("tracecheck", false)
	flag.Parse()

	sess, err := pf.Start()
	if err != nil {
		return fmt.Errorf("tracecheck: %v", err)
	}
	defer sess.Close()
	defer pf.Close()

	readOpts, err := pf.ReadOptions()
	if err != nil {
		return fmt.Errorf("tracecheck: %v", err)
	}

	// With a real trace, lint jobs as they stream off the reader —
	// memory stays bounded by the job window, not the table size.
	var rep *lint.Report
	var stats *trace.ReadStats
	if *tracePath != "" {
		rep = lint.NewReport()
		stats, err = cli.StreamJobs(*tracePath, readOpts, func(j trace.Job) error {
			rep.Lint(j)
			return nil
		})
	} else {
		var jobs []trace.Job
		jobs, stats, err = cli.LoadOrGenerateOpts("", *gen, *seed, readOpts)
		if err == nil {
			rep = lint.Jobs(jobs)
		}
	}
	if err != nil {
		var be *trace.BudgetError
		if errors.As(err, &be) {
			printIngestHealth(&be.Stats, pf.Ingest.Quarantine)
			fmt.Printf("FAIL: %v\n", be)
			sess.AddWarning(be.Error())
			cli.Exit(1)
		}
		return fmt.Errorf("tracecheck: %v", err)
	}
	if stats != nil && (stats.BadRows > 0 || stats.Partial || readOpts.Mode == trace.Lenient) {
		printIngestHealth(stats, pf.Ingest.Quarantine)
		if stats.Partial {
			sess.AddWarning(fmt.Sprintf("partial read: %v", stats.PartialCause))
		}
	}
	rep.Finish()

	fmt.Printf("linted %d jobs: %d errors, %d warnings, %d info\n\n",
		rep.Jobs, rep.Count(lint.Error), rep.Count(lint.Warning), rep.Count(lint.Info))

	checks := make([]string, 0, len(rep.ByCheck))
	for c := range rep.ByCheck {
		checks = append(checks, c)
	}
	sort.Strings(checks)
	for _, c := range checks {
		fmt.Printf("%-18s %d\n", c, rep.ByCheck[c])
	}
	fmt.Println()

	for _, sev := range []lint.Severity{lint.Error, lint.Warning} {
		printed := 0
		for _, f := range rep.Findings {
			if f.Severity != sev {
				continue
			}
			if printed == *maxFindings {
				fmt.Printf("... more %s findings suppressed\n", sev)
				break
			}
			fmt.Printf("%-7s %s: %s: %s\n", sev, f.Job, f.Check, f.Detail)
			printed++
		}
	}

	// Non-zero exit for dirty traces, but through cli.Exit so any
	// deferred cleanup in future revisions still runs.
	if !rep.Clean() {
		cli.Exit(1)
	}
	return nil
}

// printIngestHealth renders the resilient reader's health report: the
// rows parsed, the per-class rejection tallies, quarantine placement
// and whether the table was cut short.
func printIngestHealth(stats *trace.ReadStats, quarantinePath string) {
	fmt.Printf("== Ingest health ==\n")
	fmt.Printf("rows parsed:     %d\n", stats.Rows)
	fmt.Printf("rows rejected:   %d\n", stats.BadRows)
	for _, c := range stats.Classes() {
		fmt.Printf("  %-15s %d\n", string(c)+":", stats.ByClass[c])
	}
	if stats.ZeroedFields > 0 {
		fmt.Printf("fields zeroed:   %d (non-finite values in kept rows)\n", stats.ZeroedFields)
	}
	if quarantinePath != "" {
		fmt.Printf("quarantined:     %d rows -> %s\n", stats.Quarantined, quarantinePath)
	}
	if stats.ReopenedJobs > 0 {
		fmt.Printf("reopened jobs:   %d (rows resurfaced after the job window flushed)\n", stats.ReopenedJobs)
	}
	fmt.Printf("partial read:    %v", stats.Partial)
	if stats.Partial {
		fmt.Printf(" (%v)", stats.PartialCause)
	}
	fmt.Printf("\n\n")
}
