// Command tracegen synthesizes an Alibaba-v2018-style batch workload
// trace and writes the batch_task (and optionally batch_instance) CSV
// tables.
//
// Usage:
//
//	tracegen -jobs 100000 -seed 1 -out batch_task.csv [-instances batch_instance.csv]
//
// The shared observability flags (-v, -log-json, -debug-addr,
// -trace-out, -ledger) are accepted too.
package main

import (
	"flag"
	"fmt"
	"os"

	"jobgraph/internal/cli"
	"jobgraph/internal/trace"
	"jobgraph/internal/tracegen"
)

func main() { cli.Run(run) }

func run() error {
	var (
		jobs      = flag.Int("jobs", 10000, "number of jobs to generate")
		seed      = flag.Int64("seed", 1, "RNG seed")
		out       = flag.String("out", "batch_task.csv", "batch_task output path")
		instances = flag.String("instances", "", "optional batch_instance output path")
		dagFrac   = flag.Float64("dag-fraction", 0.5, "share of jobs with DAG structure")
	)
	obsFlags := cli.RegisterObsFlags()
	flag.Parse()

	sess, err := obsFlags.Start("tracegen")
	if err != nil {
		return fmt.Errorf("tracegen: %v", err)
	}
	defer sess.Close()

	cfg := tracegen.DefaultConfig(*jobs, *seed)
	cfg.DAGFraction = *dagFrac
	records, err := tracegen.Generate(cfg)
	if err != nil {
		return fmt.Errorf("tracegen: %v", err)
	}
	f, err := os.Create(*out)
	if err != nil {
		return fmt.Errorf("tracegen: %v", err)
	}
	if err := trace.WriteTasks(f, records); err != nil {
		return fmt.Errorf("tracegen: write: %v", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("tracegen: close: %v", err)
	}
	fmt.Printf("wrote %d task rows for %d jobs to %s\n", len(records), *jobs, *out)

	if *instances != "" {
		inst, err := tracegen.GenerateInstances(records, tracegen.DefaultInstanceConfig(*seed))
		if err != nil {
			return fmt.Errorf("tracegen: instances: %v", err)
		}
		g, err := os.Create(*instances)
		if err != nil {
			return fmt.Errorf("tracegen: %v", err)
		}
		if err := trace.WriteInstances(g, inst); err != nil {
			return fmt.Errorf("tracegen: write instances: %v", err)
		}
		if err := g.Close(); err != nil {
			return fmt.Errorf("tracegen: close: %v", err)
		}
		fmt.Printf("wrote %d instance rows to %s\n", len(inst), *instances)
	}
	return nil
}
