// Command jobinfo inspects a single batch job: it decodes the task-name
// dependency structure and prints every structural measure the paper
// defines — size, critical path, width profile, degree stats, shape
// class, node conflation and transitive reduction — plus DOT output.
//
// The job is given either as task names on the command line or as a job
// id to look up in a trace:
//
//	jobinfo M1 M3 R2_1 R4_3 R5_4_3_2_1
//	jobinfo -trace batch_task.csv -job j_1001388
//	jobinfo -dot M1 R2_1
//
// The shared observability flags (-v, -log-json, -debug-addr,
// -trace-out, -ledger) are accepted too.
package main

import (
	"flag"
	"fmt"
	"strings"

	"jobgraph/internal/cli"
	"jobgraph/internal/conflate"
	"jobgraph/internal/dag"
	"jobgraph/internal/pattern"
	"jobgraph/internal/trace"
)

func main() { cli.Run(run) }

func run() error {
	var (
		tracePath = flag.String("trace", "", "batch_task CSV to look the job up in")
		jobID     = flag.String("job", "", "job id to look up (requires -trace)")
		dotOnly   = flag.Bool("dot", false, "print only the Graphviz DOT document")
	)
	obsFlags := cli.RegisterObsFlags()
	flag.Parse()

	sess, err := obsFlags.Start("jobinfo")
	if err != nil {
		return fmt.Errorf("jobinfo: %v", err)
	}
	defer sess.Close()

	g, err := loadJob(*tracePath, *jobID, flag.Args())
	if err != nil {
		return fmt.Errorf("jobinfo: %v", err)
	}
	if *dotOnly {
		fmt.Print(g.DOT())
		return nil
	}
	printInfo(g)
	return nil
}

func loadJob(tracePath, jobID string, names []string) (*dag.Graph, error) {
	if tracePath != "" {
		if jobID == "" {
			return nil, fmt.Errorf("-trace requires -job")
		}
		r, err := trace.OpenTable(tracePath)
		if err != nil {
			return nil, err
		}
		defer r.Close()
		var specs []dag.TaskSpec
		err = trace.ReadTasks(r, func(rec trace.TaskRecord) error {
			if rec.JobName == jobID {
				specs = append(specs, dag.TaskSpec{
					Name:      rec.TaskName,
					Duration:  rec.Duration(),
					Instances: rec.InstanceNum,
					PlanCPU:   rec.PlanCPU,
					PlanMem:   rec.PlanMem,
				})
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		if len(specs) == 0 {
			return nil, fmt.Errorf("job %s not found in %s", jobID, tracePath)
		}
		res, err := dag.FromTasks(jobID, specs, dag.BuildOptions{SkipMissingDeps: true})
		if err != nil {
			return nil, err
		}
		return res.Graph, nil
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("give task names as arguments or -trace/-job")
	}
	specs := make([]dag.TaskSpec, 0, len(names))
	for _, n := range names {
		specs = append(specs, dag.TaskSpec{Name: n, Instances: 1})
	}
	res, err := dag.FromTasks("cli", specs, dag.BuildOptions{})
	if err != nil {
		return nil, err
	}
	if res.Independent > 0 {
		fmt.Printf("note: %d task name(s) without DAG structure were skipped\n", res.Independent)
	}
	return res.Graph, nil
}

func printInfo(g *dag.Graph) {
	fmt.Println(g.Summary())
	fmt.Println()
	fmt.Print(g.ASCII())
	fmt.Println()

	shape, err := pattern.Classify(g)
	if err != nil {
		cli.Fatalf("jobinfo: %v", err)
	}
	fmt.Printf("shape:           %s\n", shape)

	widths, err := g.WidthProfile()
	if err != nil {
		cli.Fatalf("jobinfo: %v", err)
	}
	fmt.Printf("width profile:   %v\n", widths)

	path, err := g.CriticalPath()
	if err != nil {
		cli.Fatalf("jobinfo: %v", err)
	}
	steps := make([]string, len(path))
	for i, id := range path {
		steps[i] = fmt.Sprintf("%s%d", g.Node(id).Type, id)
	}
	fmt.Printf("critical path:   %s\n", strings.Join(steps, " -> "))

	deg := g.Degrees()
	fmt.Printf("degrees:         max in %d, max out %d, mean %.2f\n", deg.MaxIn, deg.MaxOut, deg.MeanIn)

	counts := g.TypeCounts()
	var parts []string
	for _, k := range dag.SortedTypeKeys(counts) {
		parts = append(parts, fmt.Sprintf("%s=%d", k, counts[k]))
	}
	fmt.Printf("task types:      %s\n", strings.Join(parts, " "))
	fmt.Printf("sources/sinks:   %d / %d\n", len(g.Sources()), len(g.Sinks()))
	fmt.Printf("signature:       %016x\n", uint64(g.CanonicalSignature()))

	conflated, st, err := conflate.Conflate(g)
	if err != nil {
		cli.Fatalf("jobinfo: %v", err)
	}
	fmt.Printf("conflation:      %d -> %d tasks (%d merge groups)\n",
		st.SizeBefore, st.SizeAfter, st.Groups)
	_ = conflated

	redundant, err := g.RedundantEdges()
	if err != nil {
		cli.Fatalf("jobinfo: %v", err)
	}
	fmt.Printf("redundant edges: %d of %d are transitively implied\n", redundant, g.NumEdges())
}
