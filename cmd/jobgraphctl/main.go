// Command jobgraphctl is the operator/CI client for jobgraphd. It
// generates synthetic jobs client-side and drives the daemon's API
// through the retrying client, so saturation (429) and drain (503)
// responses are absorbed by backoff instead of failing the run.
//
// Usage:
//
//	jobgraphctl -mode post    [-addr host:port] [-gen 2000] [-seed 1] [-jobs 5]
//	jobgraphctl -mode rows    [-addr host:port] [-gen 2000] [-seed 1] [-jobs 5]
//	jobgraphctl -mode complete -job j_0000042
//	jobgraphctl -mode similar -job j_0000042 [-topk 10]
//	jobgraphctl -mode reload
//	jobgraphctl -mode stats
//	jobgraphctl -mode journal-complete -journal serve.journal -job j_0000042
//
// Modes:
//
//	post      POST whole jobs to /v1/jobs and print each classification
//	rows      stream jobs' rows to /v1/rows without completing them
//	          (pending state the daemon must preserve across restarts)
//	complete  POST /v1/complete for -job and print the result
//	similar   GET /v1/similar/{-job} and print the top -topk neighbours
//	reload    POST /model/reload
//	stats     GET /v1/stats and print the JSON
//	journal-complete
//	          offline: append an OpComplete record for -job to the
//	          journal at -journal (daemon must be down). This reproduces
//	          the exact on-disk state a daemon killed between committing
//	          a completion and journaling its result leaves behind, so
//	          crash-window replay is testable deterministically: the
//	          next boot must classify the job exactly once.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/url"
	"os"
	"time"

	"jobgraph/internal/cli"
	"jobgraph/internal/serve"
	"jobgraph/internal/serve/client"
	"jobgraph/internal/trace"
	"jobgraph/internal/tracegen"
)

func main() { cli.Run(run) }

func run() error {
	var (
		addr     = flag.String("addr", "localhost:8847", "jobgraphd address (host:port)")
		mode     = flag.String("mode", "post", "post | rows | complete | similar | reload | stats")
		gen      = flag.Int("gen", 2000, "jobs to generate client-side (post/rows modes)")
		seed     = flag.Int64("seed", 1, "generation RNG seed")
		jobCount = flag.Int("jobs", 5, "how many generated jobs to send (post/rows modes)")
		jobName  = flag.String("job", "", "job to act on (complete / similar / journal-complete modes)")
		topK     = flag.Int("topk", 10, "neighbours to request (similar mode)")
		jpath    = flag.String("journal", "", "journal file for -mode journal-complete")
		timeout  = flag.Duration("timeout", 2*time.Minute, "overall deadline for the whole operation")
		retries  = flag.Int("retries", 30, "max attempts per request (backpressure absorbs into backoff)")
	)
	flag.Parse()

	if *mode == "journal-complete" {
		// Offline journal surgery; no daemon, no HTTP client.
		if *jobName == "" || *jpath == "" {
			return fmt.Errorf("jobgraphctl: -mode journal-complete requires -job and -journal")
		}
		return journalComplete(*jpath, *jobName)
	}

	c, err := client.New(client.Config{
		Base:        "http://" + *addr,
		MaxAttempts: *retries,
	})
	if err != nil {
		return fmt.Errorf("jobgraphctl: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	switch *mode {
	case "post", "rows":
		jobs, err := pickJobs(*gen, *seed, *jobCount)
		if err != nil {
			return fmt.Errorf("jobgraphctl: %v", err)
		}
		for _, job := range jobs {
			if *mode == "post" {
				var res serve.Result
				err := c.Post(ctx, "/v1/jobs", map[string]any{"name": job.Name, "tasks": job.Tasks}, &res)
				if err != nil {
					return fmt.Errorf("jobgraphctl: post %s: %v", job.Name, err)
				}
				fmt.Printf("%s\tgroup=%s\tscore=%.4f\tsize=%d\n", res.Job, res.Group, res.Score, res.Size)
				continue
			}
			var ack struct {
				Accepted int `json:"accepted"`
			}
			if err := c.Post(ctx, "/v1/rows", map[string]any{"rows": job.Tasks}, &ack); err != nil {
				return fmt.Errorf("jobgraphctl: rows %s: %v", job.Name, err)
			}
			fmt.Printf("%s\trows_accepted=%d\n", job.Name, ack.Accepted)
		}
		return nil

	case "complete":
		if *jobName == "" {
			return fmt.Errorf("jobgraphctl: -mode complete requires -job")
		}
		var res serve.Result
		if err := c.Post(ctx, "/v1/complete", map[string]string{"job": *jobName}, &res); err != nil {
			return fmt.Errorf("jobgraphctl: complete %s: %v", *jobName, err)
		}
		fmt.Printf("%s\tgroup=%s\tscore=%.4f\treplayed=%v\n", res.Job, res.Group, res.Score, res.Replayed)
		return nil

	case "similar":
		if *jobName == "" {
			return fmt.Errorf("jobgraphctl: -mode similar requires -job")
		}
		var res serve.SimilarResponse
		path := fmt.Sprintf("/v1/similar/%s?k=%d", url.PathEscape(*jobName), *topK)
		if err := c.Get(ctx, path, &res); err != nil {
			return fmt.Errorf("jobgraphctl: similar %s: %v", *jobName, err)
		}
		for _, h := range res.Hits {
			fmt.Printf("%s\tsimilarity=%.4f\n", h.Job, h.Similarity)
		}
		if len(res.Hits) == 0 {
			fmt.Printf("%s\tno neighbours in the index\n", res.Job)
		}
		return nil

	case "reload":
		var out map[string]any
		if err := c.Post(ctx, "/model/reload", struct{}{}, &out); err != nil {
			return fmt.Errorf("jobgraphctl: reload: %v", err)
		}
		fmt.Printf("reloaded: %v\n", out)
		return nil

	case "stats":
		var st serve.Stats
		if err := c.Get(ctx, "/v1/stats", &st); err != nil {
			return fmt.Errorf("jobgraphctl: stats: %v", err)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(st)

	default:
		return fmt.Errorf("jobgraphctl: unknown -mode %q", *mode)
	}
}

// journalComplete appends an OpComplete record for job to the journal
// at path, recreating the crash window a daemon killed between its two
// group commits leaves on disk. The job must already have journaled
// rows; the next daemon boot replays and classifies it exactly once.
func journalComplete(path, job string) error {
	j, recs, truncated, err := serve.OpenJournal(path)
	if err != nil {
		return fmt.Errorf("jobgraphctl: %v", err)
	}
	defer j.Close()
	if truncated {
		fmt.Fprintln(os.Stderr, "jobgraphctl: journal had a damaged tail (truncated)")
	}
	rows := 0
	for _, rec := range recs {
		if rec.Op == serve.OpRow && rec.Job == job {
			rows++
		}
	}
	if rows == 0 {
		return fmt.Errorf("jobgraphctl: journal has no rows for %s", job)
	}
	if err := j.Append(serve.Record{Op: serve.OpComplete, Seq: j.NextSeq(), Job: job}); err != nil {
		return fmt.Errorf("jobgraphctl: %v", err)
	}
	if err := j.Sync(); err != nil {
		return fmt.Errorf("jobgraphctl: %v", err)
	}
	fmt.Printf("%s\tmarked complete in %s (%d journaled rows)\n", job, path, rows)
	return nil
}

// pickJobs generates a synthetic workload and returns the first n jobs
// that carry real dependency structure (multi-task, dependency-encoded
// names) — the interesting ones to classify.
func pickJobs(gen int, seed int64, n int) ([]trace.Job, error) {
	jobs, err := tracegen.GenerateJobs(tracegen.DefaultConfig(gen, seed))
	if err != nil {
		return nil, err
	}
	var out []trace.Job
	for _, job := range jobs {
		if len(job.Tasks) >= 3 {
			out = append(out, job)
		}
		if len(out) == n {
			return out, nil
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no multi-task jobs in %d generated", gen)
	}
	return out, nil
}
