# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test test-short race bench fuzz reproduce metrics fmt vet clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/taskname/
	$(GO) test -fuzz=FuzzReadTasks -fuzztime=30s ./internal/trace/

reproduce:
	$(GO) run ./cmd/reproduce -gen 20000 -seed 1 -out results/

# Small instrumented run; the snapshot is already indented JSON.
metrics:
	$(GO) run ./cmd/reproduce -gen 2000 -seed 1 -out results/ -v >/dev/null
	cat results/metrics.json

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

clean:
	$(GO) clean ./...
	rm -rf results/
