# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test test-short race bench fuzz reproduce metrics trace ledger benchdiff fmt vet clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/taskname/
	$(GO) test -fuzz=FuzzReadTasks -fuzztime=30s ./internal/trace/

reproduce:
	$(GO) run ./cmd/reproduce -gen 20000 -seed 1 -out results/

# Regenerate the committed results/metrics.json baseline from a small
# instrumented run and print it. The run lands in a scratch dir so the
# published fig*.csv files (full 20000-job run) stay untouched.
metrics:
	$(GO) run ./cmd/reproduce -gen 2000 -seed 1 -out /tmp/jobgraph-metrics/ >/dev/null
	cp /tmp/jobgraph-metrics/metrics.json results/metrics.json
	cat results/metrics.json

# Perfetto timeline for a small run: open results/trace.json at
# https://ui.perfetto.dev (or chrome://tracing).
trace:
	$(GO) run ./cmd/reproduce -gen 2000 -seed 1 -out /tmp/jobgraph-metrics/ -trace-out results/trace.json >/dev/null
	@echo "wrote results/trace.json — load it at https://ui.perfetto.dev"

# Append a run snapshot to the local run ledger.
ledger:
	$(GO) run ./cmd/reproduce -gen 2000 -seed 1 -out /tmp/jobgraph-metrics/ -ledger results/runs/ledger.jsonl >/dev/null
	@echo "appended to results/runs/ledger.jsonl"

# Compare the current run against the committed metrics baseline.
# Warn-only locally; CI decides whether to enforce.
benchdiff:
	$(GO) run ./cmd/reproduce -gen 2000 -seed 1 -out /tmp/jobgraph-bench/ >/dev/null
	$(GO) run ./cmd/benchdiff -base results/metrics.json -cur /tmp/jobgraph-bench/metrics.json -warn-only

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

clean:
	$(GO) clean ./...
	rm -rf results/
