# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test test-short race bench fuzz reproduce metrics trace ledger baseline benchdiff memprofile ann-gate cache-demo report flight-demo daemon-demo staticcheck govulncheck fmt vet clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/taskname/
	$(GO) test -fuzz=FuzzReadTasks -fuzztime=30s ./internal/trace/

reproduce:
	$(GO) run ./cmd/reproduce -gen 20000 -seed 1 -out results/

# Regenerate the committed results/metrics.json baseline from a small
# instrumented run and print it. The run lands in a scratch dir so the
# published fig*.csv files (full 20000-job run) stay untouched.
metrics:
	$(GO) run ./cmd/reproduce -gen 2000 -seed 1 -out /tmp/jobgraph-metrics/ >/dev/null
	cp /tmp/jobgraph-metrics/metrics.json results/metrics.json
	$(GO) run ./cmd/promlint -metrics results/metrics.json
	cat results/metrics.json

# Perfetto timeline for a small run: open results/trace.json at
# https://ui.perfetto.dev (or chrome://tracing).
trace:
	$(GO) run ./cmd/reproduce -gen 2000 -seed 1 -out /tmp/jobgraph-metrics/ -trace-out results/trace.json >/dev/null
	@echo "wrote results/trace.json — load it at https://ui.perfetto.dev"

# Append a run snapshot to the local run ledger.
ledger:
	$(GO) run ./cmd/reproduce -gen 2000 -seed 1 -out /tmp/jobgraph-metrics/ -ledger results/runs/ledger.jsonl >/dev/null
	@echo "appended to results/runs/ledger.jsonl"

# Self-contained HTML run report: append a fresh instrumented run to
# the local ledger, then render its newest entry. Open
# results/report.html in any browser — no external assets.
report:
	$(GO) run ./cmd/reproduce -gen 2000 -seed 1 -out /tmp/jobgraph-metrics/ -ledger results/runs/ledger.jsonl >/dev/null
	$(GO) run ./cmd/runreport -ledger results/runs/ledger.jsonl -out results/report.html

# Regenerate the committed perf-gate baseline ledger from a fresh
# instrumented run. CI compares PR runs against this file and fails on
# >15% per-stage wall-time regressions, so refresh it (on hardware
# comparable to the CI runner) whenever a deliberate perf change lands.
# -no-cache keeps the measured stages honest: the gate compares cold
# compute, never cache loads.
baseline:
	rm -f results/bench_baseline.jsonl
	$(GO) run ./cmd/reproduce -gen 2000 -seed 1 -no-cache -ann -out /tmp/jobgraph-bench/ -ledger results/bench_baseline.jsonl >/dev/null
	@echo "wrote results/bench_baseline.jsonl"

# Compare a fresh run against the committed baseline ledger, mirroring
# the CI perf gate: wall time AND per-stage allocation regressions.
# Warn-only locally; CI enforces on pull requests.
benchdiff:
	mkdir -p /tmp/jobgraph-bench
	cp results/bench_baseline.jsonl /tmp/jobgraph-bench/gate.jsonl
	$(GO) run ./cmd/reproduce -gen 2000 -seed 1 -no-cache -ann -out /tmp/jobgraph-bench/ -ledger /tmp/jobgraph-bench/gate.jsonl >/dev/null
	$(GO) run ./cmd/benchdiff -ledger /tmp/jobgraph-bench/gate.jsonl -threshold 0.15 -alloc-threshold 0.25 -min-ms 20 -warn-only

# Heap (and CPU) profile for a 500-sample clustering run — the standard
# workload for chasing allocation hot spots. Inspect with:
#   go tool pprof -top /tmp/jobgraph-memprofile/*.heap.pprof
memprofile:
	rm -rf /tmp/jobgraph-memprofile
	mkdir -p /tmp/jobgraph-memprofile
	$(GO) run ./cmd/clusterjobs -gen 10000 -sample 500 -seed 1 -no-cache \
		-profile-dir /tmp/jobgraph-memprofile >/dev/null
	@ls /tmp/jobgraph-memprofile/*.pprof

# Local mirror of CI's ANN gate: recall@10 against the exact kernel on
# the 100-job sample, the accuracy-vs-speed band sweep, and p50 query
# latency over a 1M-job synthetic sketch corpus.
ann-gate:
	mkdir -p /tmp/jobgraph-ann
	$(GO) run ./cmd/similarity -gen 20000 -sample 100 -seed 1 \
		-ann -topk 10 -minhash 64 -bands 32 -recall-check \
		-ann-report /tmp/jobgraph-ann/gate.json \
		-ann-csv /tmp/jobgraph-ann/accuracy_vs_speed.csv \
		-ann-scale 1000000
	jq -e '.recall_at_k >= 0.9' /tmp/jobgraph-ann/gate.json
	jq -e '.p50_query_us < 1000' /tmp/jobgraph-ann/gate.json
	@echo "ANN gate passed"

# Artifact-cache demonstration: a cold clusterjobs run populates the
# cache, a warm re-run at a different group count reuses everything up
# to the kernel matrix, and the warm output must match an uncached run
# at the new count byte-for-byte.
cache-demo:
	rm -rf /tmp/jobgraph-cache-demo
	mkdir -p /tmp/jobgraph-cache-demo
	@echo "== cold run (populates the cache) =="
	time $(GO) run ./cmd/clusterjobs -gen 6000 -seed 1 -cache-dir /tmp/jobgraph-cache-demo/cache > /tmp/jobgraph-cache-demo/cold.txt
	@echo "== warm run (-groups 4: reclusters the cached kernel matrix) =="
	time $(GO) run ./cmd/clusterjobs -gen 6000 -seed 1 -groups 4 -cache-dir /tmp/jobgraph-cache-demo/cache > /tmp/jobgraph-cache-demo/warm.txt
	@echo "== uncached reference at -groups 4 =="
	$(GO) run ./cmd/clusterjobs -gen 6000 -seed 1 -groups 4 -no-cache > /tmp/jobgraph-cache-demo/ref.txt
	diff /tmp/jobgraph-cache-demo/warm.txt /tmp/jobgraph-cache-demo/ref.txt
	@echo "warm output identical to the uncached run"

# Stall-watchdog demonstration: generate a small trace, then lint it
# through a fault-injected reader that stalls forever after 64 KiB. The
# ingest heartbeat goes silent, the 2s watchdog trips, captures
# goroutine/heap profiles plus a flight dump, and -watchdog-exit ends
# the wedged run with status 7. flightcheck then renders the dump.
# (tracecheck runs as a built binary: `go run` collapses the program's
# exit code to 1, and the demo asserts on the watchdog's status 7.)
flight-demo:
	rm -rf /tmp/jobgraph-flight-demo
	mkdir -p /tmp/jobgraph-flight-demo
	$(GO) build -o /tmp/jobgraph-flight-demo/tracecheck ./cmd/tracecheck
	$(GO) run ./cmd/tracegen -jobs 20000 -seed 1 -out /tmp/jobgraph-flight-demo/batch_task.csv
	/tmp/jobgraph-flight-demo/tracecheck -trace /tmp/jobgraph-flight-demo/batch_task.csv \
		-fi-stall-bytes 65536 -watchdog 2s -watchdog-exit \
		-flight-dir /tmp/jobgraph-flight-demo; \
	status=$$?; if [ $$status -ne 7 ]; then \
		echo "expected exit status 7 (watchdog trip), got $$status"; exit 1; fi
	$(GO) run ./cmd/flightcheck /tmp/jobgraph-flight-demo/*.flight.json

# Serving-plane demonstration: boot-train jobgraphd with a journal and
# an accept-stall fault, classify jobs through the retrying client
# (the stall is absorbed by backoff), then kill -9 mid-flight and show
# the journal replaying the crash window exactly once. See
# "Load-testing the daemon" in EXPERIMENTS.md.
daemon-demo:
	rm -rf /tmp/jobgraph-daemon-demo
	mkdir -p /tmp/jobgraph-daemon-demo
	$(GO) build -o /tmp/jobgraph-daemon-demo/jobgraphd ./cmd/jobgraphd
	$(GO) build -o /tmp/jobgraph-daemon-demo/jobgraphctl ./cmd/jobgraphctl
	@echo "== boot (trains and saves a model, accept-stall fault active) =="
	/tmp/jobgraph-daemon-demo/jobgraphd -addr localhost:8847 \
		-model /tmp/jobgraph-daemon-demo/model.gob \
		-journal /tmp/jobgraph-daemon-demo/serve.journal \
		-gen 4000 -sample 60 -fault-accept-stall 500ms -fault-accept-stall-conns 2 \
		-watchdog 30s & echo $$! > /tmp/jobgraph-daemon-demo/pid; sleep 1
	until /tmp/jobgraph-daemon-demo/jobgraphctl -mode stats >/dev/null 2>&1; do sleep 1; done
	/tmp/jobgraph-daemon-demo/jobgraphctl -mode post -jobs 5 -gen 2000
	/tmp/jobgraph-daemon-demo/jobgraphctl -mode rows -jobs 1 -gen 2000 \
		| tee /tmp/jobgraph-daemon-demo/rows.txt
	@echo "== kill -9, journal surgery (crash window), replay =="
	kill -9 $$(cat /tmp/jobgraph-daemon-demo/pid)
	/tmp/jobgraph-daemon-demo/jobgraphctl -mode journal-complete \
		-journal /tmp/jobgraph-daemon-demo/serve.journal \
		-job $$(head -n1 /tmp/jobgraph-daemon-demo/rows.txt | cut -f1)
	/tmp/jobgraph-daemon-demo/jobgraphd -addr localhost:8847 \
		-model /tmp/jobgraph-daemon-demo/model.gob \
		-journal /tmp/jobgraph-daemon-demo/serve.journal & echo $$! > /tmp/jobgraph-daemon-demo/pid; sleep 2
	/tmp/jobgraph-daemon-demo/jobgraphctl -mode stats
	kill -TERM $$(cat /tmp/jobgraph-daemon-demo/pid); wait $$(cat /tmp/jobgraph-daemon-demo/pid) || true
	@echo "drained cleanly"

# Static analysis as run in CI. Tools are installed on demand into
# GOPATH/bin; they are not module dependencies.
staticcheck:
	staticcheck ./... || { echo "install: go install honnef.co/go/tools/cmd/staticcheck@2025.1.1"; exit 1; }

govulncheck:
	govulncheck ./... || { echo "install: go install golang.org/x/vuln/cmd/govulncheck@latest"; exit 1; }

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

clean:
	$(GO) clean ./...
	rm -rf results/
