module jobgraph

go 1.22
