// End-to-end integration tests: synthetic trace → CSV round trip →
// filtering → kernel → clustering → reports, exercising the same path
// the cmd/ tools use.
package jobgraph_test

import (
	"bytes"
	"strings"
	"testing"

	"jobgraph/internal/cluster"
	"jobgraph/internal/core"
	"jobgraph/internal/resource"
	"jobgraph/internal/sampling"
	"jobgraph/internal/trace"
	"jobgraph/internal/tracegen"
	"jobgraph/internal/wl"
)

// TestEndToEndThroughCSV verifies the full pipeline operates on data
// that has passed through the CSV wire format, exactly as it would on
// the real Alibaba tables.
func TestEndToEndThroughCSV(t *testing.T) {
	records, err := tracegen.Generate(tracegen.DefaultConfig(3000, 101))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.WriteTasks(&buf, records); err != nil {
		t.Fatal(err)
	}
	jobs, err := trace.ReadJobs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	an, err := core.Run(jobs, core.DefaultConfig(benchWindow, 101))
	if err != nil {
		t.Fatal(err)
	}
	if len(an.Groups) != 5 || len(an.Sample) != 100 {
		t.Fatalf("pipeline output: %d groups, %d sample", len(an.Groups), len(an.Sample))
	}
	tbl := core.Fig9GroupTable(an)
	if !strings.Contains(tbl.String(), "population") {
		t.Fatal("group table malformed")
	}
}

// TestCSVIdentityThroughPipeline asserts that CSV round-tripping does
// not change any analysis result.
func TestCSVIdentityThroughPipeline(t *testing.T) {
	records, err := tracegen.Generate(tracegen.DefaultConfig(2000, 55))
	if err != nil {
		t.Fatal(err)
	}
	direct := trace.GroupTasks(records)

	var buf bytes.Buffer
	if err := trace.WriteTasks(&buf, records); err != nil {
		t.Fatal(err)
	}
	viaCSV, err := trace.ReadJobs(&buf)
	if err != nil {
		t.Fatal(err)
	}

	a, err := core.Run(direct, core.DefaultConfig(benchWindow, 55))
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.Run(viaCSV, core.DefaultConfig(benchWindow, 55))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Labels) != len(b.Labels) {
		t.Fatal("label count mismatch")
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("CSV round trip changed the clustering")
		}
	}
	for i := range a.Similarity.Data {
		if a.Similarity.Data[i] != b.Similarity.Data[i] {
			t.Fatal("CSV round trip changed the kernel matrix")
		}
	}
}

// TestPaperHeadlineShapes asserts the qualitative results the paper
// reports, end to end on a freshly generated trace.
func TestPaperHeadlineShapes(t *testing.T) {
	jobs, err := tracegen.GenerateJobs(tracegen.DefaultConfig(10000, 202))
	if err != nil {
		t.Fatal(err)
	}

	// §II-B: ~50% DAG jobs consuming 70-80% of resources.
	split, err := resource.SplitByDependency(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if s := split.DAGJobShare(); s < 0.45 || s > 0.55 {
		t.Fatalf("DAG job share %.3f", s)
	}
	if s := split.DAGCPUShare(); s < 0.65 || s > 0.88 {
		t.Fatalf("DAG CPU share %.3f", s)
	}

	an, err := core.Run(jobs, core.DefaultConfig(benchWindow, 202))
	if err != nil {
		t.Fatal(err)
	}

	// §VI-A: a major group of short chain jobs exists. (Which rank it
	// lands at varies with the k-means seed; the paper's group A is the
	// analogous block.)
	foundShortChains := false
	for _, gp := range an.Groups {
		if gp.ChainFraction >= 0.9 && gp.ShortFraction >= 0.9 && gp.Population >= 0.15 {
			foundShortChains = true
			break
		}
	}
	if !foundShortChains {
		for _, gp := range an.Groups {
			t.Logf("%s pop=%.2f chain=%.2f short=%.2f", gp.Name, gp.Population, gp.ChainFraction, gp.ShortFraction)
		}
		t.Fatal("no major short-chain group found")
	}

	// §V-A: parallelism positively correlated with size.
	rho, err := core.SizeWidthCorrelation(an)
	if err != nil {
		t.Fatal(err)
	}
	if rho <= 0.2 {
		t.Fatalf("size-width correlation %.3f", rho)
	}

	// §V-A: critical paths stay in the 2-8 band.
	for _, g := range an.Graphs {
		d, err := g.Depth()
		if err != nil {
			t.Fatal(err)
		}
		if d < 2 || d > 8 {
			t.Fatalf("depth %d outside 2-8", d)
		}
	}
}

// TestChooseKFindsPaperK checks the eigengap heuristic lands in a
// plausible neighbourhood of the paper's k=5 on pipeline similarity
// matrices.
func TestChooseKFindsPaperK(t *testing.T) {
	jobs, err := tracegen.GenerateJobs(tracegen.DefaultConfig(5000, 77))
	if err != nil {
		t.Fatal(err)
	}
	cands, _, err := sampling.Filter(jobs, sampling.PaperCriteria(benchWindow))
	if err != nil {
		t.Fatal(err)
	}
	graphs := sampling.Graphs(sampling.SampleDiverse(cands, 100, 77))
	sim, err := wl.KernelMatrix(graphs, wl.DefaultOptions(), 0)
	if err != nil {
		t.Fatal(err)
	}
	k, err := cluster.ChooseK(sim, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if k < 2 || k > 10 {
		t.Fatalf("ChooseK = %d", k)
	}
	t.Logf("eigengap K = %d (paper used 5)", k)
}

// TestScaleThousandJobKernel exercises the pipeline well beyond the
// paper's 100-job sample: a 1000-job kernel matrix plus clustering.
// Skipped under -short.
func TestScaleThousandJobKernel(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	jobs, err := tracegen.GenerateJobs(tracegen.DefaultConfig(30000, 303))
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(benchWindow, 303)
	cfg.SampleSize = 1000
	an, err := core.Run(jobs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(an.Sample) != 1000 || an.Similarity.Rows != 1000 {
		t.Fatalf("scale run: %d sampled", len(an.Sample))
	}
	if len(an.Groups) != 5 {
		t.Fatalf("groups = %d", len(an.Groups))
	}
	total := 0
	for _, gp := range an.Groups {
		total += gp.Count
	}
	if total != 1000 {
		t.Fatalf("group membership total = %d", total)
	}
	// Hashed embedding agrees with the dictionary path at this scale.
	hashed, err := wl.HashedFeatures(an.Graphs, cfg.WL, 1<<20, 0)
	if err != nil {
		t.Fatal(err)
	}
	exact, _, err := wl.Features(an.Graphs, cfg.WL)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ { // spot-check a band
		for j := i; j < 50; j++ {
			a := wl.Similarity(exact[i], exact[j])
			b := wl.Similarity(hashed[i], hashed[j])
			if d := a - b; d > 1e-9 || d < -1e-9 {
				t.Fatalf("hashed disagreement at (%d,%d): %g vs %g", i, j, a, b)
			}
		}
	}
}
