// Similarity-search: index a job population with WL feature vectors and
// answer nearest-neighbour queries — "which existing jobs look like this
// incoming job?", the building block for the paper's scheduling use
// case (predicting resource demands of new jobs from similar old ones).
package main

import (
	"bytes"
	"fmt"
	"log"

	"jobgraph/internal/dag"
	"jobgraph/internal/sampling"
	"jobgraph/internal/tracegen"
	"jobgraph/internal/wl"
)

func main() {
	jobs, err := tracegen.GenerateJobs(tracegen.DefaultConfig(10000, 99))
	if err != nil {
		log.Fatal(err)
	}
	cands, _, err := sampling.Filter(jobs, sampling.PaperCriteria(2*8*24*3600))
	if err != nil {
		log.Fatal(err)
	}
	corpus := sampling.Graphs(sampling.SampleDiverse(cands, 500, 1))

	// Build a persistent similarity index, round-trip it through its
	// JSON form (as a long-lived service would), and query the loaded
	// copy.
	built, err := wl.NewIndex(wl.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	byID := make(map[string]*dag.Graph, len(corpus))
	for _, g := range corpus {
		if err := built.Add(g); err != nil {
			log.Fatal(err)
		}
		byID[g.JobID] = g
	}
	var stored bytes.Buffer
	if err := built.Save(&stored); err != nil {
		log.Fatal(err)
	}
	index, err := wl.LoadIndex(&stored)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d jobs (%d bytes persisted)\n\n", index.Len(), stored.Cap())

	// The "incoming" query job: a fresh 2-map/1-join/1-reduce DAG that
	// never appeared in the corpus.
	query := dag.New("incoming-job")
	mustAdd := func(n dag.Node) {
		if err := query.AddNode(n); err != nil {
			log.Fatal(err)
		}
	}
	mustAdd(dag.Node{ID: 1, Type: 'M', Duration: 40, Instances: 10})
	mustAdd(dag.Node{ID: 2, Type: 'M', Duration: 35, Instances: 8})
	mustAdd(dag.Node{ID: 3, Type: 'J', Duration: 60, Instances: 4})
	mustAdd(dag.Node{ID: 4, Type: 'R', Duration: 20, Instances: 2})
	for _, e := range [][2]dag.NodeID{{1, 3}, {2, 3}, {3, 4}} {
		if err := query.AddEdge(e[0], e[1]); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("query job:\n%s\n", query.ASCII())

	hits, err := index.Query(query, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top 5 most similar corpus jobs:")
	for _, h := range hits {
		g := byID[h.JobID]
		depth, _ := g.Depth()
		width, _ := g.MaxWidth()
		fmt.Printf("  sim=%.3f  %s: %d tasks, depth %d, width %d\n",
			h.Similarity, h.JobID, g.Size(), depth, width)
	}

	// Predict the query's completion-time scale from its neighbours.
	var est float64
	for _, h := range hits {
		cpd, err := byID[h.JobID].CriticalPathDuration()
		if err != nil {
			log.Fatal(err)
		}
		est += cpd
	}
	est /= float64(len(hits))
	actual, _ := query.CriticalPathDuration()
	fmt.Printf("\nneighbour-predicted critical path: %.0fs (query's actual: %.0fs)\n", est, actual)
}
