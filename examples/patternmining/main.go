// Patternmining: run the §V-B structural census over a large synthetic
// trace — shape taxonomy shares, size/critical-path/width tables, node
// conflation effect, and recurring-structure detection via canonical
// signatures.
package main

import (
	"fmt"
	"log"
	"sort"

	"jobgraph/internal/core"
	"jobgraph/internal/dag"
	"jobgraph/internal/report"
	"jobgraph/internal/sampling"
	"jobgraph/internal/tracegen"
)

func main() {
	jobs, err := tracegen.GenerateJobs(tracegen.DefaultConfig(20000, 7))
	if err != nil {
		log.Fatal(err)
	}
	cands, fstats, err := sampling.Filter(jobs, sampling.PaperCriteria(2*8*24*3600))
	if err != nil {
		log.Fatal(err)
	}
	graphs := sampling.Graphs(cands)
	fmt.Printf("trace: %d jobs, %d eligible DAG jobs (%.1f%% of batch workload has dependencies)\n\n",
		fstats.Input, fstats.Kept, 100*float64(fstats.Kept+fstats.SizeRejected)/float64(fstats.Input))

	// Shape census.
	tbl, census, err := core.PatternCensusTable(graphs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tbl)
	_ = census

	// Size-group features (Fig 4) as bar chart.
	rows, err := core.FigSizeGroupFeatures(graphs, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("job count per size group:")
	maxCount := 0
	for _, r := range rows {
		if r.Count > maxCount {
			maxCount = r.Count
		}
	}
	for _, r := range rows {
		fmt.Println(report.Bar(fmt.Sprintf("size %d", r.Size), float64(r.Count), float64(maxCount), 50))
	}
	fmt.Println()

	// Recurring structures: identical canonical signatures across jobs.
	bySig := make(map[dag.Signature]int)
	for _, g := range graphs {
		bySig[g.CanonicalSignature()]++
	}
	type sigCount struct {
		sig dag.Signature
		n   int
	}
	var top []sigCount
	for s, n := range bySig {
		top = append(top, sigCount{s, n})
	}
	sort.Slice(top, func(i, j int) bool { return top[i].n > top[j].n })
	fmt.Printf("distinct topologies: %d across %d jobs\n", len(bySig), len(graphs))
	fmt.Println("most recurrent structures:")
	for i := 0; i < 5 && i < len(top); i++ {
		// Find one exemplar for the signature.
		for _, g := range graphs {
			if g.CanonicalSignature() == top[i].sig {
				fmt.Printf("  %5d jobs share structure of %s (%d tasks, %d edges)\n",
					top[i].n, g.JobID, g.Size(), g.NumEdges())
				break
			}
		}
	}
}
