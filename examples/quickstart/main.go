// Quickstart: generate a small synthetic trace, run the full pipeline
// (filter → sample → WL kernel → spectral clustering) and print the
// cluster-group table — the paper's Figure 9 in about thirty lines.
package main

import (
	"fmt"
	"log"

	"jobgraph/internal/core"
	"jobgraph/internal/tracegen"
)

func main() {
	// 1. A synthetic Alibaba-style trace: 5000 batch jobs, ~half with
	//    DAG dependency structure.
	jobs, err := tracegen.GenerateJobs(tracegen.DefaultConfig(5000, 42))
	if err != nil {
		log.Fatal(err)
	}

	// 2. The paper pipeline with default (paper-calibrated) settings:
	//    integrity/availability filtering, a 100-job diverse sample,
	//    Weisfeiler-Lehman subtree kernel, spectral clustering into 5
	//    groups.
	an, err := core.Run(jobs, core.DefaultConfig(2*8*24*3600, 42))
	if err != nil {
		log.Fatal(err)
	}

	// 3. Results: group profiles and a couple of headline numbers.
	fmt.Println(core.Fig9GroupTable(an))
	fmt.Printf("clustering silhouette: %.3f\n", an.Silhouette)
	rho, err := core.SizeWidthCorrelation(an)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("job size vs parallelism (Spearman): %.3f\n", rho)
	fmt.Printf("\ngroup A representative job (%s):\n%s",
		an.Groups[0].Representative, an.Graphs[an.Groups[0].Members[0]].ASCII())
}
