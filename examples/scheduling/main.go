// Scheduling: the paper's motivating application end-to-end. Cluster a
// job population by topology, derive per-group completion-time
// predictions, and use them as scheduling priorities in a discrete-
// event cluster simulation — comparing FIFO, critical-path-first and
// the cluster-group-informed policy.
package main

import (
	"fmt"
	"log"

	"jobgraph/internal/core"
	"jobgraph/internal/sched"
	"jobgraph/internal/tracegen"
)

func main() {
	jobs, err := tracegen.GenerateJobs(tracegen.DefaultConfig(8000, 5))
	if err != nil {
		log.Fatal(err)
	}

	// Phase 1: learn the group structure on a sample (the "historical"
	// workload analysis).
	cfg := core.DefaultConfig(2*8*24*3600, 5)
	cfg.SampleSize = 200
	an, err := core.Run(jobs, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Per-group mean critical-path duration: the prediction each group
	// supplies for its members.
	groupCPD := make(map[string]float64, len(an.Groups))
	for _, gp := range an.Groups {
		var sum float64
		for _, idx := range gp.Members {
			cpd, err := an.Graphs[idx].CriticalPathDuration()
			if err != nil {
				log.Fatal(err)
			}
			sum += cpd
		}
		groupCPD[gp.Name] = sum / float64(gp.Count)
		fmt.Printf("group %s: %3d jobs, predicted critical path %.0fs\n",
			gp.Name, gp.Count, groupCPD[gp.Name])
	}
	fmt.Println()

	// Phase 2: schedule the sampled jobs under contention. The group-
	// aware policy boosts jobs from groups predicted to finish quickly
	// (shortest-predicted-first), using only group membership — no
	// per-job oracle.
	memberGroup := make(map[int]string)
	for _, gp := range an.Groups {
		for _, idx := range gp.Members {
			memberGroup[idx] = gp.Name
		}
	}
	specs := make([]sched.JobSpec, len(an.Graphs))
	for i, g := range an.Graphs {
		specs[i] = sched.JobSpec{
			Graph:         g,
			Arrival:       float64(i), // steady submission stream
			GroupPriority: -groupCPD[memberGroup[i]],
		}
	}
	for _, pol := range []sched.Policy{sched.FIFO, sched.CriticalPathFirst, sched.GroupAware} {
		res, err := sched.Simulate(specs, sched.Options{Slots: 8, Policy: pol})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s mean completion %9.1fs   makespan %9.1fs\n",
			pol.String()+":", res.MeanCompletion, res.Makespan)
	}
}
