// Benchmarks regenerating every table and figure of the paper, one
// bench per experiment in DESIGN.md's index, plus the ablation benches
// (A1–A5). Run with:
//
//	go test -bench=. -benchmem
package jobgraph_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"jobgraph/internal/cluster"
	"jobgraph/internal/core"
	"jobgraph/internal/dag"
	"jobgraph/internal/features"
	"jobgraph/internal/ged"
	"jobgraph/internal/obs"
	"jobgraph/internal/obs/flight"
	"jobgraph/internal/pattern"
	"jobgraph/internal/sampling"
	"jobgraph/internal/sched"
	"jobgraph/internal/trace"
	"jobgraph/internal/tracegen"
	"jobgraph/internal/wl"
)

const benchWindow = 2 * 8 * 24 * 3600

// fixture holds the shared benchmark inputs, generated once.
type fixture struct {
	jobs     []trace.Job
	cands    []sampling.Candidate
	graphs   []*dag.Graph // full eligible set
	sample   []*dag.Graph // paper-scale 100-job sample
	analysis *core.Analysis
}

var (
	fixOnce sync.Once
	fix     *fixture
	fixErr  error
)

func getFixture(b *testing.B) *fixture {
	b.Helper()
	fixOnce.Do(func() {
		jobs, err := tracegen.GenerateJobs(tracegen.DefaultConfig(5000, 1))
		if err != nil {
			fixErr = err
			return
		}
		cands, _, err := sampling.Filter(jobs, sampling.PaperCriteria(benchWindow))
		if err != nil {
			fixErr = err
			return
		}
		an, err := core.Run(jobs, core.DefaultConfig(benchWindow, 1))
		if err != nil {
			fixErr = err
			return
		}
		fix = &fixture{
			jobs:     jobs,
			cands:    cands,
			graphs:   sampling.Graphs(cands),
			sample:   an.Graphs,
			analysis: an,
		}
	})
	if fixErr != nil {
		b.Fatal(fixErr)
	}
	return fix
}

// BenchmarkFig2BuildDAGs measures DAG construction from trace task rows
// (E1): the name-decoding and graph-building cost per trace.
func BenchmarkFig2BuildDAGs(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, j := range f.jobs[:500] {
			specs := make([]dag.TaskSpec, 0, len(j.Tasks))
			for _, t := range j.Tasks {
				specs = append(specs, dag.TaskSpec{Name: t.TaskName, Duration: t.Duration()})
			}
			if _, err := dag.FromTasks(j.Name, specs, dag.BuildOptions{SkipMissingDeps: true}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig3Conflation regenerates the before/after size table (E2).
func BenchmarkFig3Conflation(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Fig3Conflation(f.graphs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4Features regenerates the raw per-size-group feature
// table (E3).
func BenchmarkFig4Features(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.FigSizeGroupFeatures(f.graphs, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5FeaturesConflated regenerates the conflated per-size-
// group feature table (E4).
func BenchmarkFig5FeaturesConflated(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.FigSizeGroupFeatures(f.graphs, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5bPatternCensus regenerates the §V-B shape shares (E5).
func BenchmarkFig5bPatternCensus(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		census := pattern.NewCensus()
		for _, g := range f.graphs {
			if err := census.Add(g); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig6TaskTypes regenerates the M/J/R distribution (E6).
func BenchmarkFig6TaskTypes(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Fig6TaskTypes(f.analysis)
	}
}

// BenchmarkFig7KernelMatrix regenerates the 100×100 WL similarity map
// (E7) — the pipeline's computational core.
func BenchmarkFig7KernelMatrix(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wl.KernelMatrix(f.sample, wl.DefaultOptions(), 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8Clustering regenerates the spectral clustering on the
// precomputed similarity matrix (E8).
func BenchmarkFig8Clustering(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.Spectral(f.analysis.Similarity, cluster.SpectralOptions{
			K:      5,
			KMeans: cluster.KMeansOptions{Seed: 1},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9GroupProfiles regenerates the full pipeline including
// group profiling (E9).
func BenchmarkFig9GroupProfiles(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(f.jobs, core.DefaultConfig(benchWindow, 1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationWLDepth measures kernel cost as the refinement depth
// h grows (A1).
func BenchmarkAblationWLDepth(b *testing.B) {
	f := getFixture(b)
	for h := 0; h <= 5; h++ {
		b.Run(fmt.Sprintf("h=%d", h), func(b *testing.B) {
			opt := wl.Options{Iterations: h, UseTypeLabels: true}
			for i := 0; i < b.N; i++ {
				if _, err := wl.KernelMatrix(f.sample, opt, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationGEDvsWL contrasts one pairwise comparison under
// exact GED, beam GED and the WL kernel on small jobs (A2) — the
// paper's cost argument for kernels.
func BenchmarkAblationGEDvsWL(b *testing.B) {
	f := getFixture(b)
	var small []*dag.Graph
	for _, g := range f.graphs {
		if g.Size() >= 4 && g.Size() <= 7 {
			small = append(small, g)
		}
		if len(small) == 2 {
			break
		}
	}
	if len(small) < 2 {
		b.Skip("no small job pair in fixture")
	}
	x, y := small[0], small[1]
	b.Run("ged-exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ged.Exact(x, y, ged.DefaultCosts(), 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ged-beam", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ged.Beam(x, y, ged.DefaultCosts(), 50); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ged-bipartite", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ged.Bipartite(x, y, ged.DefaultCosts()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("wl", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := wl.GraphSimilarity(x, y, wl.DefaultOptions()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationKernelParallel sweeps the kernel-matrix worker count
// (A3).
func BenchmarkAblationKernelParallel(b *testing.B) {
	f := getFixture(b)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := wl.KernelMatrix(f.sample, wl.DefaultOptions(), w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationBaseKernel contrasts the subtree and shortest-path
// base kernels on the paper-scale matrix (A6).
func BenchmarkAblationBaseKernel(b *testing.B) {
	f := getFixture(b)
	for _, base := range []wl.BaseKernel{wl.BaseSubtree, wl.BaseShortestPath} {
		b.Run(base.String(), func(b *testing.B) {
			opt := wl.Options{Iterations: 3, UseTypeLabels: true, Base: base}
			for i := 0; i < b.N; i++ {
				if _, err := wl.KernelMatrix(f.sample, opt, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBaselineFeatureKMeans measures the prior-work baseline:
// k-means over standardized statistical features (A4).
func BenchmarkBaselineFeatureKMeans(b *testing.B) {
	f := getFixture(b)
	pts, err := features.Matrix(f.sample)
	if err != nil {
		b.Fatal(err)
	}
	if _, _, err := features.Standardize(pts); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.KMeans(pts, cluster.KMeansOptions{K: 5, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationHashedFeatures contrasts the shared-dictionary walk
// with lock-free hashed embedding (A8).
func BenchmarkAblationHashedFeatures(b *testing.B) {
	f := getFixture(b)
	b.Run("dictionary", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := wl.Features(f.sample, wl.DefaultOptions()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hashed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := wl.HashedFeatures(f.sample, wl.DefaultOptions(), 1<<20, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBaselineKMedoids measures PAM clustering on the WL kernel
// distances (A4 comparator).
func BenchmarkBaselineKMedoids(b *testing.B) {
	f := getFixture(b)
	dist, err := cluster.DistanceFromSimilarity(f.analysis.Similarity)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.KMedoids(dist, cluster.KMedoidsOptions{K: 5, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBaselineHierarchical measures UPGMA agglomeration on the WL
// kernel distances (A4 comparator).
func BenchmarkBaselineHierarchical(b *testing.B) {
	f := getFixture(b)
	dist, err := cluster.DistanceFromSimilarity(f.analysis.Similarity)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.Hierarchical(dist, 5, cluster.AverageLinkage); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIndexQuery measures a nearest-neighbour lookup against a
// 100-job similarity index (the similarity-search application).
func BenchmarkIndexQuery(b *testing.B) {
	f := getFixture(b)
	ix, err := wl.NewIndex(wl.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	for i, g := range f.sample {
		c := g.Clone()
		c.JobID = fmt.Sprintf("job-%d", i)
		if err := ix.Add(c); err != nil {
			b.Fatal(err)
		}
	}
	query := f.sample[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Query(query, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// annBenchCorpus synthesizes n hashed WL embeddings shaped like the
// prototype-plus-perturbation population the scale probe uses, sketches
// them, and loads them into a built ANN index.
func annBenchCorpus(b *testing.B, n int) (*wl.ANNIndex, []string) {
	b.Helper()
	opt := wl.SketchOptions{Buckets: 1 << 20, Hashes: 64, Bands: 32, Seed: 7}
	rng := rand.New(rand.NewSource(7))
	protos := make([][]int32, 512)
	for i := range protos {
		keys := make([]int32, 12+rng.Intn(24))
		for j := range keys {
			keys[j] = int32(rng.Intn(1 << 20))
		}
		protos[i] = keys
	}
	vecs := make([]wl.Vector, n)
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		v := make(wl.Vector)
		for _, k := range protos[rng.Intn(len(protos))] {
			v[int(k)] = float64(1 + rng.Intn(3))
		}
		v[rng.Intn(1<<20)] = 1
		vecs[i] = v
		ids[i] = fmt.Sprintf("bench-job-%d", i)
	}
	sigs, err := wl.Sketches(vecs, opt, 0)
	if err != nil {
		b.Fatal(err)
	}
	ix, err := wl.NewANNIndexFromSketches(wl.DefaultOptions(), opt, ids, vecs, sigs)
	if err != nil {
		b.Fatal(err)
	}
	ix.Build()
	return ix, ids
}

// BenchmarkANNQuery measures a banded-LSH top-k query (candidate lookup
// plus exact cosine re-rank) against a 100k-job sketch index — the
// sublinear path that replaces the O(n) exact index scan at scale.
func BenchmarkANNQuery(b *testing.B) {
	ix, ids := annBenchCorpus(b, 100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.QueryJob(ids[i%len(ids)], 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSketchCluster measures mini-batch k-means over 20k hashed
// embeddings — the sketch-space clustering that stands in for exact
// spectral beyond the 100-job reference scale.
func BenchmarkSketchCluster(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	pts := make([]map[int]float64, 20_000)
	for i := range pts {
		base := (i % 5) * 40
		v := make(map[int]float64, 12)
		for j := 0; j < 10; j++ {
			v[base+rng.Intn(40)] = float64(1 + rng.Intn(3))
		}
		v[200+rng.Intn(1<<16)] = 1
		pts[i] = v
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.MiniBatchKMeans(pts, cluster.MiniBatchKMeansOptions{K: 5, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkApplicationPlacement measures instance placement under each
// policy (E12).
func BenchmarkApplicationPlacement(b *testing.B) {
	f := getFixture(b)
	n := len(f.cands)
	if n > 300 {
		n = 300
	}
	jobs := make([]sched.PlacementJob, 0, n)
	for i := 0; i < n; i++ {
		total := 0
		for _, id := range f.cands[i].Graph.NodeIDs() {
			total += f.cands[i].Graph.Node(id).Instances
		}
		jobs = append(jobs, sched.PlacementJob{
			JobID: f.cands[i].Job.Name, Group: "G", Instances: total,
		})
	}
	for _, pol := range []sched.PlacementPolicy{
		sched.RandomPlacement, sched.LeastLoadedPlacement, sched.GroupPackedPlacement,
	} {
		b.Run(pol.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sched.Place(jobs, sched.PlacementOptions{
					Machines: 400, Policy: pol, Seed: 1,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkApplicationScheduling runs the scheduling simulation under
// each policy (A5).
func BenchmarkApplicationScheduling(b *testing.B) {
	f := getFixture(b)
	n := len(f.cands)
	if n > 300 {
		n = 300
	}
	specs := make([]sched.JobSpec, 0, n)
	for i := 0; i < n; i++ {
		g := f.cands[i].Graph
		cpd, err := g.CriticalPathDuration()
		if err != nil {
			b.Fatal(err)
		}
		start, _, _ := f.cands[i].Job.Window()
		specs = append(specs, sched.JobSpec{
			Graph:         g,
			Arrival:       float64(start) / 1000,
			GroupPriority: -cpd,
		})
	}
	for _, pol := range []sched.Policy{sched.FIFO, sched.CriticalPathFirst, sched.GroupAware} {
		b.Run(pol.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sched.Simulate(specs, sched.Options{Slots: 16, Policy: pol}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkInstrumentedWL quantifies the observability tax on the
// pipeline's hot path: the paper-scale WL kernel matrix wrapped in a
// span, with the Default registry enabled (the production default) and
// disabled. Instrumentation is deliberately per-call — one span, one
// counter add, one histogram observation per matrix — so the enabled
// tax must stay under 2% of kernel runtime, and disabling the registry
// reduces every hook to a single atomic load.
func BenchmarkInstrumentedWL(b *testing.B) {
	f := getFixture(b)
	reg := obs.Default()
	kernel := func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sp := reg.StartSpan("bench.wl.kernel")
			if _, err := wl.KernelMatrix(f.sample, wl.DefaultOptions(), 0); err != nil {
				b.Fatal(err)
			}
			sp.End()
		}
	}
	b.Run("enabled", func(b *testing.B) {
		reg.SetEnabled(true)
		kernel(b)
	})
	// The flight recorder observes every span begin/end into its
	// bounded ring — the production default once a session starts. Its
	// tax rides on the same <2% budget as the base instrumentation.
	b.Run("flight", func(b *testing.B) {
		reg.SetEnabled(true)
		rec := flight.NewRecorder(reg, flight.DefaultCapacity)
		rec.SetRunInfo("bench", "bench")
		reg.SetObserver(rec)
		defer reg.SetObserver(nil)
		kernel(b)
	})
	b.Run("disabled", func(b *testing.B) {
		reg.SetEnabled(false)
		defer reg.SetEnabled(true)
		kernel(b)
	})
}
