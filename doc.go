// Package jobgraph reproduces "Characterizing Job-Task Dependency in
// Cloud Workloads Using Graph Learning" (IPPS 2021): batch-job DAG
// construction from Alibaba-style trace task names, structural
// characterization (critical path, width, shape taxonomy, node
// conflation), Weisfeiler–Lehman graph-kernel similarity, and spectral
// clustering of jobs into topological groups — plus a synthetic trace
// generator standing in for the proprietary production trace and a
// scheduling simulator demonstrating the downstream application.
//
// The implementation lives in internal/ packages wired together by
// internal/core; the cmd/ tools and examples/ programs are the public
// entry points. See README.md for the map and EXPERIMENTS.md for the
// paper-versus-measured record of every figure.
package jobgraph
